// Package remote serves generators across process boundaries: it is the
// network transport behind remote pipes. The paper's pipe |>e proxies a
// co-expression through a bounded blocking queue to another thread (§3B);
// this package keeps that contract — lazy, demand-driven, terminated by
// Icon failure — and swaps the in-memory queue for a framed TCP protocol,
// the same move as Tarau's "logic engines as interactors" (engines exposed
// as answer-serving agents over a protocol).
//
// # Protocol
//
// One connection carries one stream. The client sends OPEN naming either a
// registered generator (plus arguments) or a vetted Junicon source
// program; the server runs the generator and streams results back:
//
//	client                          server
//	  | OPEN{name|source, args, credit}
//	  |------------------------------>|
//	  |<------------------- VALUE ... |   (at most `credit` unacknowledged)
//	  | CREDIT{1}                     |   (after each consumed value)
//	  |------------------------------>|
//	  |<------------------------- EOS |   (generator failed = clean end)
//	  |<------------------------- ERR |   (producer error, vet rejection)
//	  | PING / PONG in both gaps      |   (liveness)
//	  | CANCEL                        |   (consumer stopped the pipe)
//
// Flow control is credit-based: the server may have at most as many
// unacknowledged VALUE frames in flight as the client has granted credits,
// and the client grants exactly its pipe buffer up front then one credit
// per consumed value. The pipe's buffer bound therefore throttles the
// remote producer exactly as §3B's bounded queue throttles a local
// threaded co-expression — a RemotePipe with buffer 1 degenerates to a
// remote future/M-var, just as locally.
//
// Failure propagates faithfully: the serving generator's Icon failure
// becomes EOS (the remote pipe's Next fails, Err() == nil); a producer
// runtime error or panic becomes ERR (Next fails, Err() reports it),
// mirroring pipe.Pipe.Err. Connection loss, deadline expiry and malformed
// frames also surface through Err() — never as a hang.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"junicon/internal/telemetry"
)

// Wire-level telemetry: every frame written or read in this process
// (client and server sides both funnel through writeFrame/readFrame)
// counts frames and bytes when telemetry is enabled — the disabled path
// is one atomic load per frame, negligible next to the syscall.
var (
	cFramesTx = telemetry.NewCounter("remote.frames_tx")
	cBytesTx  = telemetry.NewCounter("remote.bytes_tx")
	cFramesRx = telemetry.NewCounter("remote.frames_rx")
	cBytesRx  = telemetry.NewCounter("remote.bytes_rx")
)

// Frame types. Append-only, like the wire codec's tag space.
const (
	frameOpen   byte = 0x01 // client→server: open a stream
	frameCredit byte = 0x02 // client→server: grant n more credits
	frameValue  byte = 0x03 // server→client: one wire-encoded result
	frameEOS    byte = 0x04 // server→client: generator failed (clean end)
	frameErr    byte = 0x05 // either: fatal stream error, payload = message
	framePing   byte = 0x06 // either: liveness probe
	framePong   byte = 0x07 // either: probe answer
	frameCancel byte = 0x08 // client→server: stop the stream
	frameValues byte = 0x09 // server→client: a batch of wire-encoded results
	// Durable-generator frames (protocol v4). SNAPSHOT piggybacks on the
	// credit-grant cadence — the server emits one after every checkpoint
	// interval of delivered values, so §3B flow control bounds checkpoint
	// lag exactly as it bounds queue depth. RESUME is an alternative opening
	// frame carrying a snapshot blob; SNAPREQ forces an immediate snapshot
	// (the migration handshake).
	frameSnapshot byte = 0x0a // server→client: checkpoint blob or refusal
	frameResume   byte = 0x0b // client→server: open by restoring a snapshot
	frameSnapReq  byte = 0x0c // client→server: demand a snapshot now
)

// MaxFrame bounds a single frame payload; larger length prefixes are
// treated as a protocol error, protecting both sides from hostile peers.
const MaxFrame = 32 << 20

// frameName makes protocol errors readable.
func frameName(t byte) string {
	switch t {
	case frameOpen:
		return "OPEN"
	case frameCredit:
		return "CREDIT"
	case frameValue:
		return "VALUE"
	case frameEOS:
		return "EOS"
	case frameErr:
		return "ERR"
	case framePing:
		return "PING"
	case framePong:
		return "PONG"
	case frameCancel:
		return "CANCEL"
	case frameValues:
		return "VALUES"
	case frameSnapshot:
		return "SNAPSHOT"
	case frameResume:
		return "RESUME"
	case frameSnapReq:
		return "SNAPREQ"
	}
	return fmt.Sprintf("frame %#x", t)
}

// writeFrame emits one frame: 1-byte type, 4-byte big-endian payload
// length, payload. Callers serialize access to w.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("remote: %s payload %d exceeds MaxFrame", frameName(typ), len(payload))
	}
	hdr := [5]byte{typ}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	if telemetry.On() {
		cFramesTx.Inc()
		cBytesTx.Add(int64(5 + len(payload)))
	}
	return nil
}

// readFrame reads one frame, rejecting oversized length prefixes before
// allocating.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("remote: frame length %d exceeds MaxFrame", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if telemetry.On() {
		cFramesRx.Inc()
		cBytesRx.Add(int64(5 + n))
	}
	return hdr[0], payload, nil
}

// ---- OPEN payload ----

// openVersion guards against skew between mixed-version peers. Version 2
// added the client's telemetry stream ID after the credit grant; version 3
// added the client's batch capability — the largest VALUES frame element
// count it accepts, 0 meaning per-value VALUE frames only. Lower-version
// peers (missing fields) are still accepted and read as zero values, and
// a server capped below the client's version (Server.MaxProtocol) rejects
// the OPEN with a versioned message the client recognizes and redials down
// from. Version 4 added durable generators: the checkpoint interval and
// recovery skip count in OPEN, the RESUME opening frame, and the
// SNAPSHOT/SNAPREQ exchange.
const openVersion = 4

// Open modes.
const (
	openNamed  byte = 0 // a generator registered on the server
	openSource byte = 1 // a vetted Junicon source program + expression
	openResume byte = 2 // a checkpoint snapshot to restore (v4)
)

// openReq is the decoded OPEN payload.
type openReq struct {
	mode    byte
	version byte   // wire version to marshal as; 0 means openVersion
	credit  uint64 // initial credit grant == client pipe buffer
	stream  uint64 // client telemetry stream ID; 0 = unobserved client
	batch   uint64 // max VALUES batch the client accepts; 0 = no batching
	// v4 durability fields. interval asks the server to emit a SNAPSHOT
	// after every interval delivered values (0 = never). skip asks the
	// server to discard that many leading values before the first delivery
	// — crash recovery replays deterministically up to the resume point.
	interval uint64
	skip     uint64
	name     string // openNamed
	program  string // openSource: declarations (may be empty)
	expr     string // openSource: the generator expression
	blob     []byte // openResume: the checkpoint snapshot
	args     []byte // wire-encoded argument list (decoded lazily server-side)
}

func appendUvarint(b []byte, u uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutUvarint(tmp[:], u)]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func (o *openReq) marshal() []byte {
	ver := o.version
	if ver == 0 {
		ver = openVersion
	}
	b := []byte{ver, o.mode}
	b = appendUvarint(b, o.credit)
	b = appendUvarint(b, o.stream)
	if ver >= 3 {
		b = appendUvarint(b, o.batch)
	}
	if ver >= 4 {
		b = appendUvarint(b, o.interval)
		b = appendUvarint(b, o.skip)
	}
	switch o.mode {
	case openNamed:
		b = appendString(b, o.name)
	case openSource:
		b = appendString(b, o.program)
		b = appendString(b, o.expr)
	case openResume:
		b = appendUvarint(b, uint64(len(o.blob)))
		b = append(b, o.blob...)
	}
	return append(b, o.args...)
}

type byteReader struct {
	buf []byte
	pos int
}

func (r *byteReader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, errors.New("remote: truncated OPEN payload")
	}
	c := r.buf[r.pos]
	r.pos++
	return c, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	u, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errors.New("remote: bad uvarint in OPEN payload")
	}
	r.pos += n
	return u, nil
}

func (r *byteReader) string() (string, error) {
	u, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if u > uint64(len(r.buf)-r.pos) {
		return "", errors.New("remote: truncated string in OPEN payload")
	}
	s := string(r.buf[r.pos : r.pos+int(u)])
	r.pos += int(u)
	return s, nil
}

func (r *byteReader) bytes() ([]byte, error) {
	u, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if u > uint64(len(r.buf)-r.pos) {
		return nil, errors.New("remote: truncated bytes in OPEN payload")
	}
	b := r.buf[r.pos : r.pos+int(u)]
	r.pos += int(u)
	return b, nil
}

func parseOpen(payload []byte, maxVer byte) (*openReq, error) {
	r := &byteReader{buf: payload}
	ver, err := r.byte()
	if err != nil {
		return nil, err
	}
	if ver < 1 || ver > maxVer {
		return nil, fmt.Errorf("remote: protocol version %d, want <= %d", ver, maxVer)
	}
	o := &openReq{version: ver}
	if o.mode, err = r.byte(); err != nil {
		return nil, err
	}
	if o.credit, err = r.uvarint(); err != nil {
		return nil, err
	}
	if ver >= 2 {
		if o.stream, err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	if ver >= 3 {
		if o.batch, err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	if ver >= 4 {
		if o.interval, err = r.uvarint(); err != nil {
			return nil, err
		}
		if o.skip, err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	switch o.mode {
	case openNamed:
		if o.name, err = r.string(); err != nil {
			return nil, err
		}
	case openSource:
		if o.program, err = r.string(); err != nil {
			return nil, err
		}
		if o.expr, err = r.string(); err != nil {
			return nil, err
		}
	case openResume:
		if ver < 4 {
			return nil, fmt.Errorf("remote: RESUME requires protocol version 4, got %d", ver)
		}
		if o.blob, err = r.bytes(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("remote: unknown OPEN mode %d", o.mode)
	}
	o.args = payload[r.pos:]
	return o, nil
}

// ---- SNAPSHOT payload ----

// snapshotPayload encodes a SNAPSHOT frame: the delivered-value count the
// snapshot corresponds to, an ok byte, then either the checkpoint blob
// (ok=1) or a human-readable refusal reason (ok=0). A refusal is a normal
// answer, not an error — the stream keeps flowing and the client falls
// back to replay recovery.
func snapshotPayload(produced uint64, ok bool, rest []byte) []byte {
	b := appendUvarint(nil, produced)
	if ok {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return append(b, rest...)
}

func parseSnapshot(payload []byte) (produced uint64, ok bool, rest []byte, err error) {
	r := &byteReader{buf: payload}
	if produced, err = r.uvarint(); err != nil {
		return 0, false, nil, errors.New("remote: bad SNAPSHOT payload")
	}
	okb, err := r.byte()
	if err != nil {
		return 0, false, nil, errors.New("remote: bad SNAPSHOT payload")
	}
	return produced, okb != 0, payload[r.pos:], nil
}

// creditPayload encodes a CREDIT grant.
func creditPayload(n uint64) []byte { return appendUvarint(nil, n) }

func parseCredit(payload []byte) (uint64, error) {
	u, n := binary.Uvarint(payload)
	if n <= 0 || n != len(payload) {
		return 0, errors.New("remote: bad CREDIT payload")
	}
	return u, nil
}
