package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Exporters for drained trace events. Two formats:
//
//   - JSONL: one event object per line, each tagged with the emitting
//     process name. JSONL is the interchange format — /debug/trace
//     serves it, and traces fetched from several processes concatenate
//     by construction.
//   - Chrome trace_event JSON: the viewer format (chrome://tracing,
//     Perfetto). Each process becomes a pid, each stream a tid, so a
//     merged distributed run reads as one timeline with producer,
//     queue and consumer spans aligned by stream ID.

// TaggedEvent is an Event attributed to a process, the unit of
// cross-process trace merging. Stream is hex-encoded in JSON: stream
// IDs use all 64 bits and would lose precision as JSON numbers.
type TaggedEvent struct {
	Proc   string `json:"proc"`
	TS     int64  `json:"ts"`
	Dur    int64  `json:"dur,omitempty"`
	Stream string `json:"stream,omitempty"`
	Kind   string `json:"kind"`
	Name   string `json:"name,omitempty"`
	Arg    int64  `json:"arg,omitempty"`
}

// Tag attributes a batch of local events to the named process.
func Tag(proc string, evs []Event) []TaggedEvent {
	out := make([]TaggedEvent, len(evs))
	for i, ev := range evs {
		out[i] = TaggedEvent{
			Proc: proc,
			TS:   ev.TS,
			Dur:  ev.Dur,
			Kind: ev.Kind.String(),
			Name: ev.Name,
			Arg:  ev.Arg,
		}
		if ev.Stream != 0 {
			out[i].Stream = strconv.FormatUint(ev.Stream, 16)
		}
	}
	return out
}

// WriteJSONL writes events as JSON Lines.
func WriteJSONL(w io.Writer, evs []TaggedEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses JSON Lines events, e.g. a /debug/trace response or
// several concatenated. Blank lines are skipped; a malformed line is an
// error.
func ReadJSONL(r io.Reader) ([]TaggedEvent, error) {
	var out []TaggedEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev TaggedEvent
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("telemetry: jsonl line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// chromeEvent is one trace_event record; see the Trace Event Format
// spec. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes events in Chrome trace_event format (the
// "JSON Array Format": a single {"traceEvents": [...]} object). Events
// from different Proc values land on different pids with metadata name
// records, and each stream gets its own tid — matching stream IDs on
// both sides of a remote pipe therefore render as adjacent, aligned
// rows, which is what stitches a distributed run end-to-end.
func WriteChromeTrace(w io.Writer, evs []TaggedEvent) error {
	// Deterministic pid assignment: sorted process names.
	procs := map[string]int{}
	var names []string
	for _, ev := range evs {
		if _, ok := procs[ev.Proc]; !ok {
			procs[ev.Proc] = 0
			names = append(names, ev.Proc)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		procs[n] = i + 1
	}

	out := make([]chromeEvent, 0, len(evs)+len(names))
	for _, n := range names {
		out = append(out, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			PID:  procs[n],
			Args: map[string]any{"name": n},
		})
	}
	for _, ev := range evs {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Kind,
			TS:   float64(ev.TS) / 1e3,
			PID:  procs[ev.Proc],
			Args: map[string]any{"arg": ev.Arg},
		}
		if ev.Name == "" {
			ce.Name = ev.Kind
		}
		if ev.Stream != "" {
			ce.Args["stream"] = ev.Stream
			if id, err := strconv.ParseUint(ev.Stream, 16, 64); err == nil {
				// tid is the low stream bits: unique within a process run
				// (the high bits are the per-process seed).
				ce.TID = int64(id & 0xFFFFFFFF)
			}
		}
		if ev.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(ev.Dur) / 1e3
		} else {
			ce.Ph = "i"
			ce.Scope = "t"
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}
