package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{TS: 1000, Dur: 500, Stream: 0xAB00000001, Kind: KindYield, Name: "range", Arg: 1},
		{TS: 2000, Stream: 0xAB00000001, Kind: KindRestart, Name: "range"},
		{TS: 3000, Dur: 100, Kind: KindSpan, Name: "eval"},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, Tag("workerA", sampleEvents())); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d events, want 3", len(got))
	}
	if got[0].Proc != "workerA" || got[0].Kind != "yield" || got[0].Stream != "ab00000001" {
		t.Fatalf("unexpected first event %+v", got[0])
	}
	if got[2].Stream != "" {
		t.Fatalf("stream-less event got stream %q", got[2].Stream)
	}
}

func TestReadJSONLConcatenatedAndMalformed(t *testing.T) {
	var a, b bytes.Buffer
	WriteJSONL(&a, Tag("p1", sampleEvents()[:1]))
	WriteJSONL(&b, Tag("p2", sampleEvents()[1:]))
	merged := a.String() + "\n" + b.String()
	evs, err := ReadJSONL(strings.NewReader(merged))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("merged read %d events, want 3", len(evs))
	}
	if _, err := ReadJSONL(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("malformed line did not error")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tagged := append(Tag("coordinator", sampleEvents()), Tag("worker", sampleEvents())...)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tagged); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// 2 process_name metadata records + 6 events.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d trace events, want 8", len(doc.TraceEvents))
	}
	pids := map[float64]bool{}
	var spans, instants, metas int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			metas++
		case "X":
			spans++
			if ev["dur"].(float64) <= 0 {
				t.Fatalf("span with non-positive dur: %v", ev)
			}
		case "i":
			instants++
		}
		pids[ev["pid"].(float64)] = true
	}
	if metas != 2 || spans != 4 || instants != 2 {
		t.Fatalf("metas/spans/instants = %d/%d/%d, want 2/4/2", metas, spans, instants)
	}
	if len(pids) != 2 {
		t.Fatalf("got %d distinct pids, want 2", len(pids))
	}
}

func TestDebugHandler(t *testing.T) {
	SetMetrics(true)
	defer SetMetrics(false)
	NewCounter("test.http.counter").Add(9)
	StartTrace(128)
	defer StopTrace()
	Emit(5, KindYield, "g", 1)

	h := Handler("test-proc")

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	var snap map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/debug/metrics not JSON: %v", err)
	}
	if snap["test.http.counter"].(float64) != 9 {
		t.Fatalf("metrics counter = %v, want 9", snap["test.http.counter"])
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if !strings.Contains(rec.Body.String(), `"test.http.counter"`) {
		t.Fatal("/debug/vars does not include registry metrics")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	evs, err := ReadJSONL(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Proc != "test-proc" || evs[0].Kind != "yield" {
		t.Fatalf("unexpected /debug/trace payload %+v", evs)
	}
}
