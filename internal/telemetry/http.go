package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// HTTP exposure: the handler junicond mounts under -debug-addr. All
// endpoints are read-only and safe to hit while streams are live.
//
//	/debug/vars     expvar, including every registered metric under "junicon"
//	/debug/metrics  just the metric snapshot, as one JSON object
//	/debug/trace    drain the trace ring as JSONL (tagged with the process name)
//	/debug/pprof/*  the standard Go profiler endpoints

var publishOnce sync.Once

// PublishExpvar publishes the metric registry under the expvar key
// "junicon". Idempotent; Handler calls it, and embedders using plain
// expvar can call it directly.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("junicon", expvar.Func(func() any { return Snapshot() }))
	})
}

// Handler returns the debug mux. proc names this process in drained
// trace events (e.g. "junicond:9707"), which is how merged distributed
// traces keep their sides apart.
func Handler(proc string) http.Handler {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Snapshot())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		WriteJSONL(w, Tag(proc, DrainTrace()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
