// Package telemetry is the observability substrate for the concurrent
// generator runtime — the repo's answer to the paper's closing future-work
// item ("program monitoring and debugging within a transformational
// framework", §9). Because every construct in the system is an iterator,
// three narrow observation points cover the whole runtime: the kernel
// protocol (resume/yield/fail/restart), the queue transport underneath
// pipes (put/take blocked time, depth), and the remote framing (frames,
// bytes, credits). This package provides the shared substrate those
// layers report into:
//
//   - a metrics registry of atomic counters, gauges and log₂-bucketed
//     histograms (Snapshot, expvar exposure);
//   - a lock-free trace-event ring of span-like records carrying stream
//     IDs that are propagated across the remote protocol, so a
//     distributed run can be stitched into one timeline;
//   - exporters for the buffered events: JSONL (one event per line,
//     mergeable across processes) and Chrome trace_event format
//     (chrome://tracing, Perfetto);
//   - an HTTP debug handler (/debug/vars, /debug/metrics, /debug/trace,
//     /debug/pprof) that junicond mounts.
//
// # Cost model
//
// Everything is off by default, and the disabled path is deliberately
// branch-cheap: instrumented code guards with On() / TraceOn() /
// Active(), each a single atomic load plus a predictable branch, so the
// kernel hot loop pays effectively nothing until observation is asked
// for. The package has no dependencies outside the standard library.
package telemetry

import (
	"sync/atomic"
	"time"
)

// metricsOn gates metric recording. Trace recording is gated separately
// by the installed ring (see trace.go); both gates are single atomic
// loads on the hot path.
var metricsOn atomic.Bool

// SetMetrics enables or disables metric recording process-wide.
func SetMetrics(on bool) { metricsOn.Store(on) }

// On reports whether metric recording is enabled. Instrumented code
// guards every metric update with it, keeping the disabled path to one
// atomic load and a branch.
func On() bool { return metricsOn.Load() }

// Active reports whether any observation — metrics or tracing — is on.
// Instrumentation that pays a setup cost (stream IDs, wrapped queues)
// checks Active once at construction time.
func Active() bool { return On() || TraceOn() }

// ---- stream identifiers ----

// Stream IDs tie the events of one logical generator stream together:
// a pipe and its transport queue share one, and a remote pipe sends its
// ID in the OPEN frame so the server's producer events carry the same ID
// — that is what lets a distributed trace be stitched end-to-end. The
// high 32 bits are a per-process seed so IDs from different processes
// (coordinator, workers) do not collide in a merged trace.
var (
	streamSeed uint64
	streamCtr  atomic.Uint64
)

func init() {
	// The seed only needs to differ between cooperating processes; the
	// start time's nanoseconds mixed with a multiplicative hash is plenty
	// without reaching for crypto/rand on every process start.
	ns := uint64(time.Now().UnixNano())
	streamSeed = (ns * 0x9E3779B97F4A7C15) &^ 0xFFFFFFFF
	if streamSeed == 0 {
		streamSeed = 1 << 32
	}
}

// NextStream allocates a process-unique stream identifier, never 0.
// 0 is reserved to mean "no stream" throughout the event model.
func NextStream() uint64 {
	return streamSeed | (streamCtr.Add(1) & 0xFFFFFFFF)
}
