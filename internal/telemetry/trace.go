package telemetry

import (
	"sync/atomic"
	"time"
)

// Kind classifies a trace event. The set covers the three observation
// layers: the kernel protocol, the queue transport and the remote wire.
type Kind uint8

// Trace event kinds.
const (
	KindUnknown Kind = iota
	// Kernel protocol (core.Traced / core.Instrument).
	KindResume  // Next called (instant; spans use KindYield/KindFail)
	KindYield   // Next produced a value; Dur = time inside Next
	KindFail    // Next reported failure; Dur = time inside Next
	KindRestart // Restart called
	// Queue transport (queue.Instrument).
	KindPut  // value enqueued; Dur = producer blocked time, Arg = depth after
	KindTake // value dequeued; Dur = consumer blocked time, Arg = depth before
	// Pipe lifecycle.
	KindProducer // producer goroutine lifetime; Dur = run time, Arg = values
	// Remote transport.
	KindStreamOpen  // stream opened (client dial / server accept), Arg = credit
	KindStreamEnd   // stream ended; Dur = lifetime, Arg = values transferred
	KindCreditStall // server producer waited for credit; Dur = stall
	KindValue       // one VALUE frame produced server-side; Dur = gen.Next time
	// Host-level span (CLI eval, coordinator run).
	KindSpan
)

var kindNames = [...]string{
	KindUnknown:     "unknown",
	KindResume:      "resume",
	KindYield:       "yield",
	KindFail:        "fail",
	KindRestart:     "restart",
	KindPut:         "put",
	KindTake:        "take",
	KindProducer:    "producer",
	KindStreamOpen:  "stream-open",
	KindStreamEnd:   "stream-end",
	KindCreditStall: "credit-stall",
	KindValue:       "value",
	KindSpan:        "span",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts Kind.String; unknown strings map to KindUnknown.
func KindFromString(s string) Kind {
	for k, n := range kindNames {
		if n == s {
			return Kind(k)
		}
	}
	return KindUnknown
}

// Event is one trace record. Instant events have Dur == 0; span events
// carry their duration and TS marks the span start. Times are wall-clock
// UnixNano so events from cooperating processes align on one axis.
type Event struct {
	TS     int64  // span start (or instant time), ns since the Unix epoch
	Dur    int64  // span duration in ns; 0 for instants
	Stream uint64 // owning stream; 0 = none
	Kind   Kind
	Name   string // static label: generator name, pipe label, metric site
	Arg    int64  // kind-specific payload (depth, credits, value count)
}

// Ring is a fixed-capacity lock-free buffer of trace events. Writers
// claim a slot with one atomic add and publish with one atomic pointer
// store; when the ring wraps, the oldest events are overwritten — recent
// history always survives, which is the right bias for a flight recorder.
type Ring struct {
	slots []atomic.Pointer[Event]
	pos   atomic.Uint64
}

// DefaultRingSize is the trace buffer capacity used when none is given.
const DefaultRingSize = 1 << 16

// NewRing returns a ring holding up to capacity events (minimum 16).
func NewRing(capacity int) *Ring {
	if capacity < 16 {
		capacity = 16
	}
	return &Ring{slots: make([]atomic.Pointer[Event], capacity)}
}

// Add publishes one event.
func (r *Ring) Add(ev Event) {
	i := r.pos.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(&ev)
}

// Drain removes and returns the buffered events, oldest first by
// timestamp. Events published concurrently with Drain either make this
// batch or the next; none are duplicated.
func (r *Ring) Drain() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Swap(nil); p != nil {
			out = append(out, *p)
		}
	}
	sortEvents(out)
	return out
}

// Written reports the total number of events published, including any
// overwritten after the ring wrapped.
func (r *Ring) Written() uint64 { return r.pos.Load() }

func sortEvents(evs []Event) {
	// Insertion sort: drained events are already near-ordered because
	// slots are claimed in time order; only concurrent writers invert.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].TS < evs[j-1].TS; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// ---- global tracer ----

// The installed ring is the tracing gate: nil means tracing is off and
// Emit is one atomic load and a branch.
var tracer atomic.Pointer[Ring]

// StartTrace installs a fresh ring of the given capacity (<= 0 selects
// DefaultRingSize) and returns it. Any previously installed ring is
// replaced; its undrained events are discarded.
func StartTrace(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	r := NewRing(capacity)
	tracer.Store(r)
	return r
}

// StopTrace uninstalls the ring and returns its remaining events.
func StopTrace() []Event {
	r := tracer.Swap(nil)
	if r == nil {
		return nil
	}
	return r.Drain()
}

// DrainTrace returns the buffered events, leaving tracing active.
func DrainTrace() []Event {
	r := tracer.Load()
	if r == nil {
		return nil
	}
	return r.Drain()
}

// TraceOn reports whether a trace ring is installed.
func TraceOn() bool { return tracer.Load() != nil }

// Emit records an instant event if tracing is on.
func Emit(stream uint64, kind Kind, name string, arg int64) {
	r := tracer.Load()
	if r == nil {
		return
	}
	r.Add(Event{TS: time.Now().UnixNano(), Stream: stream, Kind: kind, Name: name, Arg: arg})
}

// EmitSpan records a span that started at start and ends now, if tracing
// is on. Call sites capture start with Since/time.Now only when TraceOn
// already held, so the disabled path never reads the clock.
func EmitSpan(stream uint64, kind Kind, name string, arg int64, start time.Time) {
	r := tracer.Load()
	if r == nil {
		return
	}
	now := time.Now()
	r.Add(Event{
		TS:     start.UnixNano(),
		Dur:    now.Sub(start).Nanoseconds(),
		Stream: stream,
		Kind:   kind,
		Name:   name,
		Arg:    arg,
	})
}
