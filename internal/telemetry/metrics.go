package telemetry

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay meaningful).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (active connections, depth).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram accumulates non-negative observations into log₂ buckets:
// bucket i counts values whose bit length is i, i.e. v in [2^(i-1), 2^i).
// Log buckets keep the whole structure a fixed array of atomics — no
// locks on the observe path — while spanning nanoseconds to minutes.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [65]atomic.Int64
}

// Observe records one value; negative values are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Reset zeroes the histogram (measurement-window delimiting).
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Bucket is one non-empty histogram bucket: N observations with value
// <= Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. P50/P99/P999
// are rank-based quantile estimates (Quantile) — the latency percentiles
// a load report quotes.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50,omitempty"`
	P99     float64  `json:"p99,omitempty"`
	P999    float64  `json:"p999,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			le := int64(-1)
			if i < 63 {
				le = (int64(1) << i) - 1
			}
			s.Buckets = append(s.Buckets, Bucket{Le: le, N: n})
		}
	}
	s.P50 = s.Quantile(0.50)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
	return s
}

// Quantile extracts the q-quantile (0 <= q <= 1) from the snapshot's
// buckets: the target rank is located in its bucket and interpolated
// linearly within the bucket's value range [lo, hi]. Log₂ buckets bound
// the relative error at 2× worst case; the top occupied bucket is clamped
// to the recorded Max, so Quantile(1) is exact and high quantiles never
// overshoot the largest observation.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for _, b := range s.Buckets {
		n := float64(b.N)
		if cum+n < target {
			cum += n
			continue
		}
		// The rank lands in this bucket: values in (lo-1, hi], i.e. the
		// bit-length class [2^(i-1), 2^i). Le == -1 marks the overflow
		// buckets whose upper bound only Max knows.
		var lo, hi float64
		switch {
		case b.Le == 0:
			return 0 // the zero bucket holds exactly the value 0
		case b.Le < 0:
			lo, hi = float64(int64(1)<<62), float64(s.Max)
		default:
			lo, hi = float64(b.Le/2+1), float64(b.Le)
		}
		if float64(s.Max) < hi {
			hi = float64(s.Max) // the true largest observation caps the top
		}
		if hi < lo {
			return hi
		}
		frac := (target - cum) / n
		return lo + frac*(hi-lo)
	}
	return float64(s.Max)
}

// ---- registry ----

// The registry is the process-wide name → metric map. Construction is
// register-or-get so package-level `var c = telemetry.NewCounter(...)`
// declarations across packages converge on one instance per name; the
// hot path never touches the registry, only the returned metric.
var registry = struct {
	mu sync.Mutex
	m  map[string]any
}{m: make(map[string]any)}

func registerOrGet[T any](name string, mk func() *T) *T {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if v, ok := registry.m[name]; ok {
		if t, ok := v.(*T); ok {
			return t
		}
		panic("telemetry: metric " + name + " registered with a different type")
	}
	t := mk()
	registry.m[name] = t
	return t
}

// NewCounter returns the counter registered under name, creating it on
// first use. Panics if name is registered as a different metric type.
func NewCounter(name string) *Counter {
	return registerOrGet(name, func() *Counter { return &Counter{} })
}

// NewGauge returns the gauge registered under name.
func NewGauge(name string) *Gauge { return registerOrGet(name, func() *Gauge { return &Gauge{} }) }

// NewHistogram returns the histogram registered under name.
func NewHistogram(name string) *Histogram {
	return registerOrGet(name, func() *Histogram { return &Histogram{} })
}

// Snapshot returns a point-in-time copy of every registered metric:
// counters and gauges as int64, histograms as HistogramSnapshot. The
// result marshals cleanly to JSON with deterministically ordered keys.
func Snapshot() map[string]any {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make(map[string]any, len(registry.m))
	for name, m := range registry.m {
		switch v := m.(type) {
		case *Counter:
			out[name] = v.Load()
		case *Gauge:
			out[name] = v.Load()
		case *Histogram:
			out[name] = v.Snapshot()
		}
	}
	return out
}

// MetricNames returns the registered metric names, sorted.
func MetricNames() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ResetMetrics zeroes every registered metric. Intended for tests and
// for delimiting measurement windows from the debug endpoint.
func ResetMetrics() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, m := range registry.m {
		switch v := m.(type) {
		case *Counter:
			v.v.Store(0)
		case *Gauge:
			v.v.Store(0)
		case *Histogram:
			v.Reset()
		}
	}
}
