package telemetry

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	c := NewCounter("test.counter")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := NewGauge("test.gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	// register-or-get converges on the same instance.
	if NewCounter("test.counter") != c {
		t.Fatal("NewCounter did not return the registered instance")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	NewCounter("test.mismatch")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering a gauge under a counter name")
		}
	}()
	NewGauge("test.mismatch")
}

func TestHistogram(t *testing.T) {
	h := NewHistogram("test.hist")
	for _, v := range []int64{0, 1, 1, 3, 100, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if s.Sum != 105 {
		t.Fatalf("sum = %d, want 105", s.Sum)
	}
	if s.Max != 100 {
		t.Fatalf("max = %d, want 100", s.Max)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.N
	}
	if total != 6 {
		t.Fatalf("bucket total = %d, want 6", total)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("test.hist.concurrent")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	c := NewCounter("test.snapshot.counter")
	c.Add(3)
	snap := Snapshot()
	if snap["test.snapshot.counter"] != int64(3) {
		t.Fatalf("snapshot counter = %v, want 3", snap["test.snapshot.counter"])
	}
	ResetMetrics()
	if c.Load() != 0 {
		t.Fatal("ResetMetrics did not zero the counter")
	}
}

func TestEnableFlags(t *testing.T) {
	if On() {
		t.Fatal("metrics unexpectedly on by default")
	}
	SetMetrics(true)
	defer SetMetrics(false)
	if !On() || !Active() {
		t.Fatal("SetMetrics(true) not observed")
	}
}

func TestNextStreamUniqueNonZero(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NextStream()
		if id == 0 {
			t.Fatal("stream id 0 allocated")
		}
		if seen[id] {
			t.Fatalf("duplicate stream id %x", id)
		}
		seen[id] = true
	}
}
