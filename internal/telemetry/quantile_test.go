package telemetry

import (
	"math"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
}

func TestQuantileSingleValue(t *testing.T) {
	var h Histogram
	h.Observe(100)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		// One observation in bucket [64,127], clamped to Max=100: every
		// quantile must land within the bucket and at or below Max.
		if got < 64 || got > 100 {
			t.Fatalf("Quantile(%v) = %v, want within [64,100]", q, got)
		}
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("Quantile(1) = %v, want exactly Max", got)
	}
}

func TestQuantileZeros(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("all-zero histogram p99 = %v, want 0", got)
	}
}

func TestQuantileUniform(t *testing.T) {
	// 1..1000 uniformly: p50 ≈ 500, p99 ≈ 990, p999 ≈ 999. Log₂ buckets
	// bound the error by the width of the containing bucket.
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct {
		q     float64
		want  float64
		slack float64 // half the containing bucket's width, roughly
	}{
		{0.50, 500, 260},
		{0.99, 990, 120},
		{0.999, 999, 120},
	}
	for _, c := range cases {
		got := s.Quantile(c.q)
		if math.Abs(got-c.want) > c.slack {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", c.q, got, c.want, c.slack)
		}
		if got > float64(s.Max) {
			t.Errorf("Quantile(%v) = %v exceeds Max %d", c.q, got, s.Max)
		}
	}
	// Monotonicity across the quantile range.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := s.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone: q=%v got %v after %v", q, got, prev)
		}
		prev = got
	}
}

func TestQuantileBimodal(t *testing.T) {
	// 90% fast (≈10ns), 10% slow (≈1e6ns): p50 must sit in the fast mode,
	// p99 in the slow mode — the shape a stalling pipeline produces and
	// the reason mean alone is not enough.
	var h Histogram
	for i := 0; i < 900; i++ {
		h.Observe(10)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1_000_000)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 > 100 {
		t.Errorf("p50 = %v, want fast mode (<=100)", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 500_000 {
		t.Errorf("p99 = %v, want slow mode (>=5e5)", p99)
	}
}

func TestSnapshotPercentileFields(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.P50 <= 0 || s.P99 <= 0 || s.P999 <= 0 {
		t.Fatalf("snapshot percentiles not populated: %+v", s)
	}
	if !(s.P50 <= s.P99 && s.P99 <= s.P999) {
		t.Fatalf("percentiles out of order: p50=%v p99=%v p999=%v", s.P50, s.P99, s.P999)
	}
	if s.P999 > float64(s.Max) {
		t.Fatalf("p999 %v exceeds max %d", s.P999, s.Max)
	}
}
