package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestRingAddDrain(t *testing.T) {
	r := NewRing(64)
	for i := int64(0); i < 10; i++ {
		r.Add(Event{TS: i, Kind: KindYield, Name: "g", Arg: i})
	}
	evs := r.Drain()
	if len(evs) != 10 {
		t.Fatalf("drained %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.TS != int64(i) {
			t.Fatalf("event %d out of order: ts %d", i, ev.TS)
		}
	}
	if len(r.Drain()) != 0 {
		t.Fatal("second drain not empty")
	}
}

func TestRingWrapKeepsRecent(t *testing.T) {
	r := NewRing(16)
	for i := int64(0); i < 100; i++ {
		r.Add(Event{TS: i})
	}
	evs := r.Drain()
	if len(evs) != 16 {
		t.Fatalf("drained %d events, want 16", len(evs))
	}
	// The survivors are the most recent writes.
	for _, ev := range evs {
		if ev.TS < 84 {
			t.Fatalf("stale event ts %d survived wrap", ev.TS)
		}
	}
	if r.Written() != 100 {
		t.Fatalf("written = %d, want 100", r.Written())
	}
}

func TestRingConcurrentWriters(t *testing.T) {
	r := NewRing(1 << 12)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(Event{TS: time.Now().UnixNano(), Stream: uint64(w)})
			}
		}(w)
	}
	wg.Wait()
	if got := len(r.Drain()); got != 800 {
		t.Fatalf("drained %d events, want 800", got)
	}
}

func TestGlobalTracer(t *testing.T) {
	if TraceOn() {
		t.Fatal("tracing unexpectedly on")
	}
	Emit(1, KindYield, "noop", 0) // must not panic while off
	StartTrace(128)
	defer StopTrace()
	if !TraceOn() {
		t.Fatal("StartTrace not observed")
	}
	Emit(7, KindYield, "g", 42)
	start := time.Now().Add(-time.Millisecond)
	EmitSpan(7, KindPut, "q", 3, start)
	evs := DrainTrace()
	if len(evs) != 2 {
		t.Fatalf("drained %d events, want 2", len(evs))
	}
	// The span started 1ms in the past, so it sorts first.
	if evs[0].Dur <= 0 {
		t.Fatalf("span duration %d, want > 0", evs[0].Dur)
	}
	if evs[1].Stream != 7 || evs[1].Kind != KindYield || evs[1].Arg != 42 {
		t.Fatalf("unexpected instant event %+v", evs[1])
	}
	if !TraceOn() {
		t.Fatal("DrainTrace disabled tracing")
	}
	StopTrace()
	if TraceOn() {
		t.Fatal("StopTrace left tracing on")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := KindUnknown; k <= KindSpan; k++ {
		if got := KindFromString(k.String()); got != k {
			t.Fatalf("round trip %v → %q → %v", k, k.String(), got)
		}
	}
	if KindFromString("no-such-kind") != KindUnknown {
		t.Fatal("unknown string did not map to KindUnknown")
	}
}
