// Package compile lowers normalized Junicon syntax trees — the §5A normal
// forms the transform package produces — into flat bytecode for the vm
// package's slot-based resumable frames. Where the tree-walking
// interpreter composes closure generators (interface dispatch per resume)
// and the translator composes the same combinators in generated Go, the
// compiler reduces suspend/resume to a saved program counter plus a choice
// stack inside one reusable frame: goal-directed backtracking becomes
// "pop the most recent choice point and re-enter its instruction".
//
// The compiler is deliberately partial: forms whose semantics live outside
// a single frame (string scanning, co-expression and pipe creation,
// reversible assignment, static variables) report Unsupported, and the
// interpreter transparently falls back to the tree walk for that unit —
// so compiled execution is a pure optimization, never a semantic fork.
package compile

import (
	"fmt"

	"junicon/internal/ast"
	"junicon/internal/core"
	"junicon/internal/value"
)

// Op is a bytecode operation.
type Op uint8

// The instruction set. A/B/C are the instruction operands: A is the
// primary operand (constant index, slot, jump target, argument count),
// B names the frame's auxiliary cell backing resumable instructions and
// C carries an extra constant index where needed.
const (
	OpNop Op = iota

	// ----- values and slots -----
	OpConst       // push Consts[A]
	OpNull        // push &null
	OpPop         // pop and discard
	OpPopN        // pop A values and discard (loop-exit stack truncation)
	OpLoadSlot    // push slots[A]
	OpStoreSlot   // slots[A] = deref(top); top replaced by the stored value
	OpBindSlot    // slots[A] = deref(top); top kept (BindIn: x_N in e)
	OpLoadGlobal  // push Globals[A]'s value
	OpStoreGlobal // Globals[A] = deref(top); top replaced by the stored value

	// ----- control -----
	OpJump       // pc = A
	OpFail       // backtrack: resume the most recent choice point
	OpYield      // pop v; emit deref(v); resumption continues at pc+1
	OpReturn     // pop v; discard all choice points; emit deref(v)
	OpReturnFail // discard all choice points and fail the frame (proc `fail`)
	OpMark       // arm a failure handler: failure resumes at A; aux B records the barrier
	OpCut        // drop choice points above aux B's barrier (commit a bounded context)
	OpFork       // alternation: arm a choice point; resumption continues at A
	OpRepAlt     // |e loop head (aux B): re-runs e while each cycle produced
	OpRepNote    // record that the enclosing |e cycle produced a value (aux B)
	OpLimitBegin // pop n (e \ n); aux B holds the count, limit and barrier
	OpLimitCheck // count one result; at the limit, cut e's choice points

	// ----- operators -----
	OpArith       // pop b, a; push arith[A](a, b)
	OpCmp         // pop b, a; v, ok = cmp[A](a, b); fail or push v
	OpUnary       // pop a; push unary[A](a)
	OpNullTest    // pop a; push &null when null, else fail (/x)
	OpNonNullTest // pop a; fail when null, else push the value (\x)
	OpBang        // pop v; generate v's elements (aux B)
	OpToBy        // pop by, hi, lo; generate the range (aux B)
	OpCaseEq      // pop v; continue when v === slots[A], else fail

	// ----- structures -----
	OpMakeList  // pop A values; push the list [v1, …, vA]
	OpIndex     // pop i, x; push deref(x[i]) or fail
	OpIndexVar  // pop i, x; push the reference x[i] or fail (assignment target)
	OpSection   // pop j, i, x; push x[i:j] or fail
	OpField     // pop x; push deref(x.name) for name Consts[A]; missing raises
	OpFieldVar  // pop x; push the reference x.name (assignment target)
	OpStoreVar  // pop v, t; t must be a variable; t := deref(v); push the value
	OpAugVar    // pop v, t; r = arith[A](t value, v); t := r; push r
	OpCmpAugVar // pop v, t; r, ok = cmp[A](t value, v); fail or t := r; push r
	// Fused read-modify-write for named targets: the target's current value
	// is read when the operation applies (per source value, as AugAssignVar
	// reads t.Get() per cycle).
	OpAugSlot      // pop v; r = arith[C](slots[A], v); slots[A] = r; push r
	OpCmpAugSlot   // pop v; r, ok = cmp[C](slots[A], v); fail or store+push
	OpAugGlobal    // pop v; r = arith[C](Globals[A], v); Globals[A] = r; push r
	OpCmpAugGlobal // pop v; r, ok = cmp[C](Globals[A], v); fail or store+push

	// ----- invocation -----
	OpCall       // A args + callee on stack; general call, resumable (aux B)
	OpCall1      // A args + callee; facts-proven ≤1-yield pure call, no choice point (aux B)
	OpCallNative // A args; native Consts[C]; singleton result or fail (aux B)

	opCount
)

// NumOps is the number of defined opcodes — the table size per-opcode
// consumers (the vm profiler, the disassembler) allocate.
const NumOps = int(opCount)

// Instr is one instruction.
type Instr struct {
	Op      Op
	A, B, C int32
}

// Resume is one entry of a code object's resume-point table: an
// instruction that execution can re-enter after a suspension (yield) or a
// failure (choice point). The table is what makes a compiled generator's
// continuation explicit data — PC plus slots — rather than a captured
// closure stack.
type Resume struct {
	PC   int
	Kind string // "yield", "mark", "fork", "call", "bang", "to-by", "rep-alt"
}

// Code is a compiled unit: a top-level expression or a procedure body.
type Code struct {
	Name    string // procedure name, or "" for an expression
	Params  int    // leading slots bound from call arguments
	Instrs  []Instr
	Consts  []value.V
	Globals []*value.Var // global cells, resolved at compile time
	// GlobalNames parallels Globals for the disassembler.
	GlobalNames []string
	// Slots names the frame's slot array: parameters first, then locals
	// and the x_N temporaries of the normal form, in slot order.
	Slots  []string
	NumAux int // auxiliary cells backing resumable instructions
	// Resumes is the resume-point table, in program order.
	Resumes []Resume
}

// Unsupported reports a form the compiler does not lower; callers fall
// back to the tree-walking interpreter for the whole unit.
type Unsupported struct {
	Reason string
	At     ast.Pos
}

func (u *Unsupported) Error() string {
	return fmt.Sprintf("compile: unsupported at %d:%d: %s", u.At.Line, u.At.Col, u.Reason)
}

// Env supplies name resolution and interprocedural facts to the compiler.
// All lookups happen at compile time, mirroring the interpreter's
// resolve-at-construction discipline (the tree walk also binds cells when
// the generator is built, not when it is driven).
type Env struct {
	// LookupGlobal returns the cell of an existing global.
	LookupGlobal func(name string) (*value.Var, bool)
	// DefineGlobal auto-creates a global cell for an unknown top-level
	// name (the interpreter's REPL-persistence rule). nil in procedure
	// mode, where unknown names become frame slots (Icon default-local).
	DefineGlobal func(name string) *value.Var
	// LookupConst resolves builtins and natives to compile-time constant
	// values, after globals and locals have been tried.
	LookupConst func(name string) (value.V, bool)
	// Native resolves a ::name native invocation.
	Native func(name string) (*value.Native, bool)
	// CallDirect reports that calls to the named procedure may compile to
	// a direct (non-resumable) call: the facts engine proved the callee
	// pure with at most one yield.
	CallDirect func(name string) bool
}

// Operator tables: the compiler encodes an operator as an index into
// these shared tables; the vm indexes the same tables at run time. The
// functions are exactly the kernel's (core.ArithOp / core.CompareOp), so
// compiled and tree-walked operators share one implementation.
var (
	// ArithNames lists the binary arithmetic/constructive operators in
	// encoding order.
	ArithNames = []string{"+", "-", "*", "/", "%", "^", "||", "|||", "++", "--", "**"}
	// CmpNames lists the conditional comparison operators in encoding order.
	CmpNames = []string{"<", "<=", ">", ">=", "~=", "<<", "<<=", ">>", ">>=", "==", "~==", "===", "~==="}
	// UnaryNames lists the unary operators in encoding order.
	UnaryNames = []string{"-", "+", "~", "*", "^"}

	// ArithFns, CmpFns and UnaryFns are the corresponding kernel functions.
	ArithFns []func(a, b value.V) value.V
	CmpFns   []func(a, b value.V) (value.V, bool)
	UnaryFns []func(v value.V) value.V

	arithIndex = map[string]int{}
	cmpIndex   = map[string]int{}
)

func init() {
	for i, name := range ArithNames {
		fn, ok := core.ArithOp(name)
		if !ok {
			panic("compile: missing kernel arith op " + name)
		}
		ArithFns = append(ArithFns, fn)
		arithIndex[name] = i
	}
	for i, name := range CmpNames {
		fn, ok := core.CompareOp(name)
		if !ok {
			panic("compile: missing kernel comparison op " + name)
		}
		CmpFns = append(CmpFns, fn)
		cmpIndex[name] = i
	}
	UnaryFns = []func(v value.V) value.V{
		value.Neg, value.Pos, value.Complement,
		func(v value.V) value.V { // *x, including co-expression sizes
			if s, ok := value.Deref(v).(value.Sized); ok {
				return value.IntV(int64(s.Size()))
			}
			return value.Size(v)
		},
		core.Refresh, // ^x
	}
}

var unaryIndex = map[string]int{"-": 0, "+": 1, "~": 2, "*": 3, "^": 4}
