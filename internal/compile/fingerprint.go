package compile

import (
	"encoding/binary"
	"hash/fnv"

	"junicon/internal/value"
)

// Fingerprint hashes everything that determines a frame's state layout and
// instruction stream: the unit name, parameter count, slot and global
// names, aux-cell count, the instructions and the constant images. Two
// units with equal fingerprints interpret a snapshot's PC, slot array and
// choice stack identically, so a checkpoint taken against one can be
// rehydrated against the other (typically: the same source recompiled in a
// fresh process). Globals hash by name only — their *values* are part of
// the environment, not the layout, exactly as a co-expression environment
// snapshot copies locals but shares globals.
func (c *Code) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	u32 := func(v int32) {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		h.Write(buf[:])
	}
	str := func(s string) {
		u32(int32(len(s)))
		h.Write([]byte(s))
	}
	str(c.Name)
	u32(int32(c.Params))
	u32(int32(c.NumAux))
	u32(int32(len(c.Slots)))
	for _, s := range c.Slots {
		str(s)
	}
	u32(int32(len(c.GlobalNames)))
	for _, g := range c.GlobalNames {
		str(g)
	}
	u32(int32(len(c.Instrs)))
	for _, in := range c.Instrs {
		u32(int32(in.Op))
		u32(in.A)
		u32(in.B)
		u32(in.C)
	}
	u32(int32(len(c.Consts)))
	for _, k := range c.Consts {
		// The image is stable for every literal the compiler interns
		// (numbers, strings, csets, procedures by name), which is what
		// distinguishes `1 to 10` from `1 to 20` under identical opcodes.
		str(value.TypeOf(k))
		str(value.Image(k))
	}
	return h.Sum64()
}
