package compile

import (
	"junicon/internal/ast"
)

// This file lowers procedure-body statements, mirroring the interpreter's
// structural executor (interp.execStmt): statements are depth-neutral and
// failure-contained — every choice point a statement arms is consumed or
// cut before control falls through to the next statement — so suspension
// is the only way execution leaves a statement with live state.

// stmt compiles s in statement position.
func (c *compiler) stmt(s ast.Node) {
	switch x := s.(type) {
	case *ast.Block:
		// No block scope in Icon: statements share the procedure scope.
		for _, st := range x.Stmts {
			c.stmt(st)
		}

	case *ast.VarDecl:
		c.stmtVarDecl(x)

	case *ast.Initial:
		c.unsupported(x, "initial clause")

	case *ast.Return:
		if x.E == nil {
			c.emit(OpNull, 0, 0, 0)
			c.emit(OpReturn, 0, 0, 0)
			c.emit(OpFail, 0, 0, 0) // resumption after return fails the frame
			return
		}
		d := c.depth
		aux := c.newAux()
		m := c.emit(OpMark, -1, aux, 0)
		c.expr(x.E)
		c.emit(OpCut, 0, aux, 0)
		c.emit(OpReturn, 0, 0, 0)
		c.emit(OpFail, 0, 0, 0)
		c.patchA(m)
		c.depth = d
		// A failing return expression fails the whole procedure.
		c.emit(OpReturnFail, 0, 0, 0)

	case *ast.Fail:
		c.emit(OpReturnFail, 0, 0, 0)

	case *ast.Suspend:
		c.suspendStmt(x)

	case *ast.If:
		d := c.depth
		aux := c.newAux()
		m := c.emit(OpMark, -1, aux, 0)
		c.expr(x.Cond)
		c.emit(OpCut, 0, aux, 0)
		c.emit(OpPop, 0, 0, 0)
		c.stmt(x.Then)
		end := c.emit(OpJump, -1, 0, 0)
		c.patchA(m)
		c.depth = d
		if x.Else != nil {
			c.stmt(x.Else)
		}
		c.patchA(end)

	case *ast.While:
		c.loopCompile(loopWhile, x.Cond, x.Body, x.Until, true)
	case *ast.Every:
		// `every suspend e [do body]` — the classic produce-all idiom — is
		// a suspend statement over e (the interpreter merges it the same
		// way; a bare Suspend node in expression position would not
		// compile).
		if sus, isSuspend := x.E.(*ast.Suspend); isSuspend {
			merged := &ast.Suspend{E: sus.E, Body: x.Body}
			merged.P = sus.P
			if sus.Body != nil {
				merged.Body = sus.Body
			}
			c.suspendStmt(merged)
			return
		}
		c.loopCompile(loopEvery, x.E, x.Body, false, true)
	case *ast.Repeat:
		c.loopCompile(loopRepeat, nil, x.Body, false, true)

	case *ast.Case:
		c.caseStmt(x)

	case *ast.Break:
		d := c.depth
		c.breakFrom(x, x.E)
		c.depth = d
	case *ast.NextStmt:
		d := c.depth
		c.nextFrom(x)
		c.depth = d

	case *ast.Binary:
		if x.Op == "?" {
			c.unsupported(x, "string scanning statement")
		}
		c.boundedDiscard(s)

	default:
		// Plain expression statement: bounded evaluation, outcome discarded.
		c.boundedDiscard(s)
	}
}

// stmtVarDecl compiles a local declaration statement: each cell is nulled
// before its initializer runs (the executor's Define-then-init order — the
// initializer of `local x := x + 1` reads null, not a stale value), and a
// failing initializer leaves the null.
func (c *compiler) stmtVarDecl(x *ast.VarDecl) {
	if x.Kind == "static" {
		c.unsupported(x, "static declaration")
	}
	for i, name := range x.Names {
		if k := c.resolved[name]; k == resGlobal || k == resConst {
			c.unsupported(x, "local "+name+" declared after non-local use")
		}
		c.emit(OpNull, 0, 0, 0)
		c.declStore(x, name)
		c.emit(OpPop, 0, 0, 0)
		if x.Inits[i] == nil {
			continue
		}
		d := c.depth
		aux := c.newAux()
		m := c.emit(OpMark, -1, aux, 0)
		c.expr(x.Inits[i])
		c.emit(OpCut, 0, aux, 0)
		c.declStore(x, name)
		c.emit(OpPop, 0, 0, 0)
		c.patchA(m)
		c.depth = d
	}
}

// suspendStmt compiles suspend e [do body]: yield every result of e,
// running the (bounded) do-clause after each resumption; when e is spent,
// control continues with the next statement.
func (c *compiler) suspendStmt(x *ast.Suspend) {
	d := c.depth
	aux := c.newAux()
	m := c.emit(OpMark, -1, aux, 0)
	c.expr(x.E)
	c.emit(OpYield, 0, 0, 0)
	if x.Body != nil {
		c.boundedDiscard(x.Body)
	}
	c.emit(OpFail, 0, 0, 0) // resume e after each delivered result
	c.patchA(m)
	c.depth = d
}

// caseStmt compiles a case statement: bounded subject (failure skips the
// whole statement), committed clause selection, branch as a statement.
func (c *compiler) caseStmt(x *ast.Case) {
	d := c.depth
	subjAux := c.newAux()
	subjFail := c.emit(OpMark, -1, subjAux, 0)
	c.expr(x.Subject)
	c.emit(OpCut, 0, subjAux, 0)
	subj := c.hiddenSlot("case")
	c.emit(OpBindSlot, subj, 0, 0)
	c.emit(OpPop, 0, 0, 0)

	var deflt ast.Node
	hasDefault := false
	var bodies []int
	var bodyStmts []ast.Node
	for _, cl := range x.Clauses {
		if cl.Sel == nil {
			deflt, hasDefault = cl.Body, true
			continue
		}
		aux := c.newAux()
		m := c.emit(OpMark, -1, aux, 0)
		c.expr(cl.Sel)
		c.emit(OpCaseEq, subj, 0, 0)
		c.emit(OpCut, 0, aux, 0)
		bodies = append(bodies, c.emit(OpJump, -1, 0, 0))
		bodyStmts = append(bodyStmts, cl.Body)
		c.patchA(m)
		c.depth = d
	}
	var ends []int
	if hasDefault {
		c.stmt(deflt)
	}
	ends = append(ends, c.emit(OpJump, -1, 0, 0))
	// Subject failure: the statement completes with nothing selected.
	c.patchA(subjFail)
	c.depth = d
	ends = append(ends, c.emit(OpJump, -1, 0, 0))
	for i, site := range bodies {
		c.patchA(site)
		c.depth = d
		c.stmt(bodyStmts[i])
		ends = append(ends, c.emit(OpJump, -1, 0, 0))
	}
	for _, site := range ends {
		c.patchA(site)
	}
	c.depth = d
}
