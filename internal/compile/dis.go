package compile

import (
	"fmt"
	"strings"

	"junicon/internal/value"
)

// opNames maps opcodes to their listing mnemonics.
var opNames = [opCount]string{
	OpNop:          "nop",
	OpConst:        "const",
	OpNull:         "null",
	OpPop:          "pop",
	OpPopN:         "pop.n",
	OpLoadSlot:     "load.slot",
	OpStoreSlot:    "store.slot",
	OpBindSlot:     "bind.slot",
	OpLoadGlobal:   "load.global",
	OpStoreGlobal:  "store.global",
	OpJump:         "jump",
	OpFail:         "fail",
	OpYield:        "yield",
	OpReturn:       "return",
	OpReturnFail:   "return.fail",
	OpMark:         "mark",
	OpCut:          "cut",
	OpFork:         "fork",
	OpRepAlt:       "rep.alt",
	OpRepNote:      "rep.note",
	OpLimitBegin:   "limit.begin",
	OpLimitCheck:   "limit.check",
	OpArith:        "arith",
	OpCmp:          "cmp",
	OpUnary:        "unary",
	OpNullTest:     "null.test",
	OpNonNullTest:  "nonnull.test",
	OpBang:         "bang",
	OpToBy:         "to.by",
	OpCaseEq:       "case.eq",
	OpMakeList:     "make.list",
	OpIndex:        "index",
	OpIndexVar:     "index.var",
	OpSection:      "section",
	OpField:        "field",
	OpFieldVar:     "field.var",
	OpStoreVar:     "store.var",
	OpAugVar:       "aug.var",
	OpCmpAugVar:    "cmp.aug.var",
	OpAugSlot:      "aug.slot",
	OpCmpAugSlot:   "cmp.aug.slot",
	OpAugGlobal:    "aug.global",
	OpCmpAugGlobal: "cmp.aug.global",
	OpCall:         "call",
	OpCall1:        "call1",
	OpCallNative:   "call.native",
}

// Name returns the opcode's listing mnemonic.
func (op Op) Name() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", op)
}

// Disassemble renders the unit as a readable listing: a header naming the
// unit, the slot table (the frame layout), the resume-point table (every
// pc a suspended or failed frame can re-enter), and the instructions with
// symbolic operands — slot names, constant images, global names, operator
// spellings and jump targets.
func (c *Code) Disassemble() string {
	var b strings.Builder
	name := c.Name
	if name == "" {
		name = "(expression)"
	}
	fmt.Fprintf(&b, "unit %s  params=%d slots=%d aux=%d\n",
		name, c.Params, len(c.Slots), c.NumAux)
	if len(c.Slots) > 0 {
		b.WriteString("  slots:  ")
		for i, s := range c.Slots {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "[%d]=%s", i, s)
		}
		b.WriteByte('\n')
	}
	if len(c.GlobalNames) > 0 {
		b.WriteString("  globals:")
		for i, g := range c.GlobalNames {
			if i > 0 {
				b.WriteByte(' ')
			} else {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "[%d]=%s", i, g)
		}
		b.WriteByte('\n')
	}
	if len(c.Resumes) > 0 {
		b.WriteString("  resume: ")
		for i, r := range c.Resumes {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d(%s)", r.PC, r.Kind)
		}
		b.WriteByte('\n')
	}
	for pc, in := range c.Instrs {
		fmt.Fprintf(&b, "  %4d: %-14s%s\n", pc, in.Op.Name(), c.operands(in))
	}
	return b.String()
}

// operands renders one instruction's operands symbolically.
func (c *Code) operands(in Instr) string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%-6d ; %s", in.A, c.constImage(in.A))
	case OpLoadSlot, OpStoreSlot, OpBindSlot:
		return fmt.Sprintf("%-6d ; %s", in.A, c.slotName(in.A))
	case OpLoadGlobal, OpStoreGlobal:
		return fmt.Sprintf("%-6d ; %s", in.A, c.globalName(in.A))
	case OpJump:
		return fmt.Sprintf("->%d", in.A)
	case OpMark, OpFork:
		return fmt.Sprintf("->%-4d aux=%d", in.A, in.B)
	case OpRepAlt:
		return fmt.Sprintf("->%-4d aux=%d", in.A, in.B)
	case OpRepNote, OpCut, OpLimitBegin, OpLimitCheck:
		return fmt.Sprintf("aux=%d", in.B)
	case OpBang, OpToBy:
		return fmt.Sprintf("aux=%d", in.B)
	case OpArith, OpAugVar:
		return fmt.Sprintf("%-6d ; %s", in.A, opSpelling(ArithNames, int(in.A)))
	case OpCmp, OpCmpAugVar:
		return fmt.Sprintf("%-6d ; %s", in.A, opSpelling(CmpNames, int(in.A)))
	case OpUnary:
		return fmt.Sprintf("%-6d ; %s", in.A, opSpelling(UnaryNames, int(in.A)))
	case OpAugSlot:
		return fmt.Sprintf("%-6d ; %s %s:=", in.A, c.slotName(in.A), opSpelling(ArithNames, int(in.C)))
	case OpCmpAugSlot:
		return fmt.Sprintf("%-6d ; %s %s:=", in.A, c.slotName(in.A), opSpelling(CmpNames, int(in.C)))
	case OpAugGlobal:
		return fmt.Sprintf("%-6d ; %s %s:=", in.A, c.globalName(in.A), opSpelling(ArithNames, int(in.C)))
	case OpCmpAugGlobal:
		return fmt.Sprintf("%-6d ; %s %s:=", in.A, c.globalName(in.A), opSpelling(CmpNames, int(in.C)))
	case OpCaseEq:
		return fmt.Sprintf("%-6d ; subject %s", in.A, c.slotName(in.A))
	case OpPopN, OpMakeList:
		return fmt.Sprintf("%d", in.A)
	case OpField, OpFieldVar:
		return fmt.Sprintf("%-6d ; .%s", in.A, c.constImage(in.A))
	case OpCall, OpCall1:
		return fmt.Sprintf("argc=%-2d aux=%d", in.A, in.B)
	case OpCallNative:
		return fmt.Sprintf("argc=%-2d aux=%d ; %s", in.A, in.B, c.constImage(in.C))
	default:
		return ""
	}
}

func (c *Code) slotName(i int32) string {
	if int(i) < len(c.Slots) {
		return c.Slots[i]
	}
	return "?"
}

func (c *Code) globalName(i int32) string {
	if int(i) < len(c.GlobalNames) {
		return c.GlobalNames[i]
	}
	return "?"
}

func (c *Code) constImage(i int32) string {
	if int(i) < len(c.Consts) {
		return value.Image(c.Consts[i])
	}
	return "?"
}

func opSpelling(names []string, i int) string {
	if i >= 0 && i < len(names) {
		return names[i]
	}
	return "?"
}
