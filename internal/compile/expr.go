package compile

import (
	"junicon/internal/ast"
	"junicon/internal/value"
)

// This file lowers expressions. The compilation schemes mirror the kernel
// combinators instruction for instruction: wherever the tree walk would
// build a generator whose Next/Restart drives sub-generators, the compiled
// form arms choice points (OpMark/OpFork) whose failure paths re-enter the
// same sub-expression code. Stack depth at every pc is static; the compiler
// tracks it (c.depth) so non-local exits (break/next) can truncate the
// operand stack to the loop's entry depth.

// expr compiles n in generative expression position: the emitted code
// pushes exactly one value per result, and failing into its choice points
// produces the rest of the sequence.
func (c *compiler) expr(n ast.Node) {
	switch x := n.(type) {
	case nil:
		c.emit(OpNull, 0, 0, 0)

	// ----- literals and names -----
	case *ast.IntLit:
		i, ok := value.ToInteger(value.String(x.Text))
		if !ok {
			c.unsupported(n, "malformed integer literal "+x.Text)
		}
		c.emit(OpConst, c.constant(i, "int:"+x.Text), 0, 0)
	case *ast.RealLit:
		r, ok := value.ToReal(value.String(x.Text))
		if !ok {
			c.unsupported(n, "malformed real literal "+x.Text)
		}
		c.emit(OpConst, c.constant(r, "real:"+x.Text), 0, 0)
	case *ast.StrLit:
		c.emit(OpConst, c.constant(value.String(x.Value), "str:"+x.Value), 0, 0)
	case *ast.CsetLit:
		c.emit(OpConst, c.constant(value.NewCset(x.Value), "cset:"+x.Value), 0, 0)
	case *ast.Keyword:
		c.keyword(x)
	case *ast.Ident:
		c.loadName(x, x.Name, false)
	case *ast.TmpRef:
		c.loadName(x, x.Name, true)
	case *ast.ListLit:
		for _, e := range x.Elems {
			c.expr(e)
		}
		c.emit(OpMakeList, int32(len(x.Elems)), 0, 0)

	// ----- normalized forms -----
	case *ast.FlatProduct:
		if len(x.Terms) == 0 {
			c.emit(OpNull, 0, 0, 0)
			return
		}
		// Product compiles to plain sequencing: backtracking is global, so
		// failure after a later term naturally resumes the nearest earlier
		// choice point — exactly the product search order.
		for _, t := range x.Terms[:len(x.Terms)-1] {
			c.expr(t)
			c.emit(OpPop, 0, 0, 0)
		}
		c.expr(x.Terms[len(x.Terms)-1])
	case *ast.BindIn:
		c.expr(x.E)
		c.emit(OpBindSlot, c.slot(x.Tmp), 0, 0)

	// ----- operators -----
	case *ast.Binary:
		c.binary(x)
	case *ast.Unary:
		c.unary(x)
	case *ast.ToBy:
		c.expr(x.Lo)
		c.expr(x.Hi)
		if x.By == nil {
			c.emit(OpConst, c.constant(value.NewInt(1), "int:1"), 0, 0)
		} else {
			c.expr(x.By)
		}
		c.emit(OpToBy, 0, c.newAux(), 0)

	// ----- primaries -----
	case *ast.Call:
		c.call(x)
	case *ast.NativeCall:
		c.nativeCall(x)
	case *ast.Index:
		c.expr(x.X)
		c.expr(x.I)
		c.emit(OpIndex, 0, 0, 0)
	case *ast.Slice:
		c.expr(x.X)
		c.expr(x.I)
		c.expr(x.J)
		c.emit(OpSection, 0, 0, 0)
	case *ast.Field:
		c.expr(x.X)
		c.emit(OpField, c.constant(value.String(x.Name), "str:"+x.Name), 0, 0)

	// ----- control -----
	case *ast.Block:
		switch len(x.Stmts) {
		case 0:
			c.emit(OpNull, 0, 0, 0)
		case 1:
			c.expr(x.Stmts[0])
		default:
			for _, s := range x.Stmts[:len(x.Stmts)-1] {
				c.boundedDiscard(s)
			}
			c.expr(x.Stmts[len(x.Stmts)-1])
		}
	case *ast.VarDecl:
		c.varDecl(x)
		c.emit(OpNull, 0, 0, 0) // the declaration's value is &null
	case *ast.If:
		c.ifExpr(x)
	case *ast.While:
		c.loopExpr(loopWhile, x.Cond, x.Body, x.Until)
	case *ast.Every:
		c.loopExpr(loopEvery, x.E, x.Body, false)
	case *ast.Repeat:
		c.loopExpr(loopRepeat, nil, x.Body, false)
	case *ast.Case:
		c.caseExpr(x)
	case *ast.Break:
		d := c.depth
		c.breakFrom(x, x.E)
		c.depth = d + 1 // never falls through; callers see one pushed value
	case *ast.NextStmt:
		d := c.depth
		c.nextFrom(x)
		c.depth = d + 1
	case *ast.Fail:
		c.emit(OpFail, 0, 0, 0)
		c.depth++

	case *ast.Return, *ast.Suspend:
		c.unsupported(n, "return/suspend outside a procedure body")
	case *ast.Initial:
		c.unsupported(n, "initial clause")
	default:
		c.unsupported(n, "form not compiled")
	}
}

// keyword compiles &-keywords; the scanning keywords live outside a frame.
func (c *compiler) keyword(k *ast.Keyword) {
	switch k.Name {
	case "null":
		c.emit(OpNull, 0, 0, 0)
	case "fail":
		c.emit(OpFail, 0, 0, 0)
		c.depth++
	case "lcase":
		c.emit(OpConst, c.constant(value.CsetLcase, "kw:lcase"), 0, 0)
	case "ucase":
		c.emit(OpConst, c.constant(value.CsetUcase, "kw:ucase"), 0, 0)
	case "digits":
		c.emit(OpConst, c.constant(value.CsetDigits, "kw:digits"), 0, 0)
	case "letters":
		c.emit(OpConst, c.constant(value.CsetLetters, "kw:letters"), 0, 0)
	default:
		c.unsupported(k, "keyword &"+k.Name)
	}
}

// binary compiles binary operators.
func (c *compiler) binary(x *ast.Binary) {
	switch x.Op {
	case "&":
		c.expr(x.L)
		c.emit(OpPop, 0, 0, 0)
		c.expr(x.R)
		return
	case "|":
		d := c.depth
		fork := c.emit(OpFork, -1, 0, 0)
		c.expr(x.L)
		end := c.emit(OpJump, -1, 0, 0)
		c.patchA(fork)
		c.depth = d
		c.expr(x.R)
		c.patchA(end)
		return
	case ":=":
		c.assign(x.L, x.R)
		return
	case "\\":
		// The count is evaluated first, as in Icon (LimitGen).
		aux := c.newAux()
		c.expr(x.R)
		c.emit(OpLimitBegin, 0, aux, 0)
		c.expr(x.L)
		c.emit(OpLimitCheck, 0, aux, 0)
		return
	case "<-", ":=:", "<->":
		c.unsupported(x, "reversible assignment/exchange "+x.Op)
	case "@":
		c.unsupported(x, "co-expression activation")
	case "?":
		c.unsupported(x, "string scanning")
	}
	if i, ok := arithIndex[x.Op]; ok {
		c.expr(x.L)
		c.expr(x.R)
		c.emit(OpArith, int32(i), 0, 0)
		return
	}
	if i, ok := cmpIndex[x.Op]; ok {
		c.expr(x.L)
		c.expr(x.R)
		c.emit(OpCmp, int32(i), 0, 0)
		return
	}
	if len(x.Op) > 2 && x.Op[len(x.Op)-2:] == ":=" {
		c.augAssign(x)
		return
	}
	c.unsupported(x, "operator "+x.Op)
}

// unary compiles prefix operators.
func (c *compiler) unary(x *ast.Unary) {
	switch x.Op {
	case "!":
		c.expr(x.X)
		c.emit(OpBang, 0, c.newAux(), 0)
	case "/":
		c.expr(x.X)
		c.emit(OpNullTest, 0, 0, 0)
	case "\\":
		c.expr(x.X)
		c.emit(OpNonNullTest, 0, 0, 0)
	case "|":
		// Repeated alternation: the RepAlt cell notes whether the current
		// cycle produced anything; an empty cycle fails the construct.
		aux := c.newAux()
		top := c.emit(OpRepAlt, 0, aux, 0)
		c.code.Instrs[top].A = int32(top + 1)
		c.expr(x.X)
		c.emit(OpRepNote, 0, aux, 0)
	case "not":
		d := c.depth
		aux := c.newAux()
		m := c.emit(OpMark, -1, aux, 0)
		c.expr(x.X)
		c.emit(OpCut, 0, aux, 0)
		c.emit(OpPop, 0, 0, 0)
		c.emit(OpFail, 0, 0, 0)
		c.patchA(m)
		c.depth = d
		c.emit(OpNull, 0, 0, 0)
	case "-", "+", "~", "*", "^":
		c.expr(x.X)
		c.emit(OpUnary, int32(unaryIndex[x.Op]), 0, 0)
	case "?":
		c.unsupported(x, "random element ?x")
	case "=":
		c.unsupported(x, "tab-match =x (scanning)")
	case "@":
		c.unsupported(x, "co-expression activation")
	case "<>", "|<>", "|>":
		c.unsupported(x, "generator/co-expression/pipe creation "+x.Op)
	default:
		c.unsupported(x, "unary operator "+x.Op)
	}
}

// call compiles f(args…). When the callee is a statically known procedure
// the facts engine proved pure with at most one yield, the site compiles to
// OpCall1 — no choice point, no resume bookkeeping (the PR-6 facts feeding
// the PR-7 call protocol).
func (c *compiler) call(x *ast.Call) {
	direct := false
	if id, ok := x.Fun.(*ast.Ident); ok && c.env.CallDirect != nil {
		if _, isSlot := c.slotIdx[id.Name]; !isSlot {
			if _, isGlobal := c.env.LookupGlobal(id.Name); isGlobal && c.env.CallDirect(id.Name) {
				direct = true
			}
		}
	}
	c.expr(x.Fun)
	for _, a := range x.Args {
		c.expr(a)
	}
	op := OpCall
	if direct {
		op = OpCall1
	}
	c.emit(op, int32(len(x.Args)), c.newAux(), 0)
}

// nativeCall compiles recv::name(args…): registry lookup at compile time,
// receiver (when present) passed as the first argument.
func (c *compiler) nativeCall(x *ast.NativeCall) {
	if c.env.Native == nil {
		c.unsupported(x, "native ::"+x.Name)
	}
	native, ok := c.env.Native(x.Name)
	if !ok {
		// The interpreter raises at construction; fall back so it does.
		c.unsupported(x, "unregistered native ::"+x.Name)
	}
	n := len(x.Args)
	if x.Recv != nil {
		c.expr(x.Recv)
		n++
	}
	for _, a := range x.Args {
		c.expr(a)
	}
	c.emit(OpCallNative, int32(n), c.newAux(), c.constant(native, "native:"+x.Name))
}

// assign compiles target := rhs.
func (c *compiler) assign(target ast.Node, rhs ast.Node) {
	switch t := target.(type) {
	case *ast.Ident:
		c.expr(rhs)
		c.storeName(t, t.Name, false)
	case *ast.TmpRef:
		c.expr(rhs)
		c.storeName(t, t.Name, true)
	case *ast.Index:
		// The reference is resolved before the right side runs (a failing
		// subscript must skip rhs's effects), matching Assign's operand
		// order: target outer, source inner.
		c.expr(t.X)
		c.expr(t.I)
		c.emit(OpIndexVar, 0, 0, 0)
		c.expr(rhs)
		c.emit(OpStoreVar, 0, 0, 0)
	case *ast.Field:
		c.expr(t.X)
		c.emit(OpFieldVar, c.constant(value.String(t.Name), "str:"+t.Name), 0, 0)
		c.expr(rhs)
		c.emit(OpStoreVar, 0, 0, 0)
	default:
		c.unsupported(target, "assignment target")
	}
}

// augAssign compiles target op:= rhs. The target's current value is read
// when the operation applies — per source value, as AugAssignVar does — so
// slots and globals get fused read-modify-write opcodes rather than a
// load/store pair around the rhs.
func (c *compiler) augAssign(x *ast.Binary) {
	base := x.Op[:len(x.Op)-2]
	ai, isArith := arithIndex[base]
	ci, isCmp := cmpIndex[base]
	if !isArith && !isCmp {
		c.unsupported(x, "operator "+x.Op)
	}
	idx, op2 := int32(ai), [2]Op{OpAugSlot, OpAugGlobal}
	opVar := OpAugVar
	if isCmp {
		idx, op2 = int32(ci), [2]Op{OpCmpAugSlot, OpCmpAugGlobal}
		opVar = OpCmpAugVar
	}
	switch t := x.L.(type) {
	case *ast.Ident, *ast.TmpRef:
		name, tmp := "", false
		if id, ok := t.(*ast.Ident); ok {
			name = id.Name
		} else {
			name, tmp = t.(*ast.TmpRef).Name, true
		}
		c.expr(x.R)
		c.emitAugName(x, name, tmp, op2, idx)
		return
	case *ast.Index:
		c.expr(t.X)
		c.expr(t.I)
		c.emit(OpIndexVar, 0, 0, 0)
	case *ast.Field:
		c.expr(t.X)
		c.emit(OpFieldVar, c.constant(value.String(t.Name), "str:"+t.Name), 0, 0)
	default:
		c.unsupported(x.L, "augmented assignment target")
	}
	c.expr(x.R)
	c.emit(opVar, idx, 0, 0)
}

// emitAugName resolves an augmented assignment to a named target, using the
// slot or global fused opcode.
func (c *compiler) emitAugName(n ast.Node, name string, tmp bool, ops [2]Op, idx int32) {
	if i, ok := c.slotIdx[name]; ok {
		c.emit(ops[0], int32(i), 0, idx)
		return
	}
	if tmp {
		c.emit(ops[0], c.slot(name), 0, idx)
		return
	}
	if cell, ok := c.env.LookupGlobal(name); ok {
		c.emit(ops[1], c.global(name, cell), 0, idx)
		return
	}
	if _, ok := c.env.LookupConst(name); ok {
		c.unsupported(n, "augmented assignment to builtin "+name)
	}
	if c.procMode {
		c.emit(ops[0], c.slot(name), 0, idx)
		return
	}
	if c.env.DefineGlobal == nil {
		c.unsupported(n, "unknown assignment target "+name)
	}
	cell := c.env.DefineGlobal(name)
	c.emit(ops[1], c.global(name, cell), 0, idx)
}

// boundedDiscard compiles s as a bounded, discarded evaluation: at most one
// result, failure ignored — the kernel's sequence-term discipline.
func (c *compiler) boundedDiscard(s ast.Node) {
	d := c.depth
	aux := c.newAux()
	m := c.emit(OpMark, -1, aux, 0)
	c.expr(s)
	c.emit(OpCut, 0, aux, 0)
	c.emit(OpPop, 0, 0, 0)
	c.patchA(m)
	c.depth = d
}

// varDecl compiles local declarations: each initializer is evaluated
// boundedly; a failing (or absent) initializer leaves &null.
func (c *compiler) varDecl(x *ast.VarDecl) {
	if x.Kind == "static" {
		c.unsupported(x, "static declaration")
	}
	for i, name := range x.Names {
		if k := c.resolved[name]; k == resGlobal || k == resConst {
			// The name was already resolved non-locally earlier in this
			// unit; redeclaring it local here would diverge from the
			// interpreter's construction-order resolution.
			c.unsupported(x, "local "+name+" declared after non-local use")
		}
		d := c.depth
		if x.Inits[i] == nil {
			c.emit(OpNull, 0, 0, 0)
			c.declStore(x, name)
			c.emit(OpPop, 0, 0, 0)
			continue
		}
		aux := c.newAux()
		m := c.emit(OpMark, -1, aux, 0)
		c.expr(x.Inits[i])
		c.emit(OpCut, 0, aux, 0)
		c.declStore(x, name)
		c.emit(OpPop, 0, 0, 0)
		done := c.emit(OpJump, -1, 0, 0)
		c.patchA(m)
		c.depth = d
		c.emit(OpNull, 0, 0, 0)
		c.declStore(x, name)
		c.emit(OpPop, 0, 0, 0)
		c.patchA(done)
	}
}

// declStore stores the top of stack into the declared name: a slot inside
// procedures, a (defined-on-the-spot) global at top level.
func (c *compiler) declStore(n ast.Node, name string) {
	if c.procMode {
		c.emit(OpStoreSlot, c.slot(name), 0, 0)
		return
	}
	if i, ok := c.slotIdx[name]; ok {
		c.emit(OpStoreSlot, int32(i), 0, 0)
		return
	}
	if cell, ok := c.env.LookupGlobal(name); ok {
		c.emit(OpStoreGlobal, c.global(name, cell), 0, 0)
		return
	}
	if c.env.DefineGlobal == nil {
		c.unsupported(n, "declaration outside a procedure")
	}
	cell := c.env.DefineGlobal(name)
	c.emit(OpStoreGlobal, c.global(name, cell), 0, 0)
}

// ifExpr compiles if/then/else in expression position: the condition is
// bounded; the chosen branch supplies the result sequence.
func (c *compiler) ifExpr(x *ast.If) {
	d := c.depth
	aux := c.newAux()
	m := c.emit(OpMark, -1, aux, 0)
	c.expr(x.Cond)
	c.emit(OpCut, 0, aux, 0)
	c.emit(OpPop, 0, 0, 0)
	c.expr(x.Then)
	end := c.emit(OpJump, -1, 0, 0)
	c.patchA(m)
	c.depth = d
	if x.Else == nil {
		c.emit(OpFail, 0, 0, 0)
		c.depth++
	} else {
		c.expr(x.Else)
	}
	c.patchA(end)
}

// caseExpr compiles a case expression. The subject is evaluated boundedly
// and pinned in a hidden slot; each selector's results are searched for ===
// equivalence (a mismatch fails back into the selector, a spent selector
// fails over to the next clause), and a match commits to its branch.
func (c *compiler) caseExpr(x *ast.Case) {
	d := c.depth
	subjAux := c.newAux()
	subjFail := c.emit(OpMark, -1, subjAux, 0)
	c.expr(x.Subject)
	c.emit(OpCut, 0, subjAux, 0)
	subj := c.hiddenSlot("case")
	c.emit(OpBindSlot, subj, 0, 0)
	c.emit(OpPop, 0, 0, 0)

	var deflt ast.Node
	hasDefault := false
	var bodies []int // Jump sites into clause bodies
	var bodyExprs []ast.Node
	for _, cl := range x.Clauses {
		if cl.Sel == nil {
			deflt, hasDefault = cl.Body, true
			continue
		}
		aux := c.newAux()
		m := c.emit(OpMark, -1, aux, 0)
		c.expr(cl.Sel)
		c.emit(OpCaseEq, subj, 0, 0)
		c.emit(OpCut, 0, aux, 0)
		bodies = append(bodies, c.emit(OpJump, -1, 0, 0))
		bodyExprs = append(bodyExprs, cl.Body)
		c.patchA(m)
		c.depth = d
	}
	var ends []int
	if hasDefault {
		c.expr(deflt)
		ends = append(ends, c.emit(OpJump, -1, 0, 0))
	} else {
		c.emit(OpFail, 0, 0, 0)
	}
	// Subject failure fails the whole expression.
	c.patchA(subjFail)
	c.depth = d
	c.emit(OpFail, 0, 0, 0)
	for i, site := range bodies {
		c.patchA(site)
		c.depth = d
		c.expr(bodyExprs[i])
		ends = append(ends, c.emit(OpJump, -1, 0, 0))
	}
	for _, site := range ends {
		c.patchA(site)
	}
	c.depth = d + 1
}

// Loop kinds for the shared loop compiler.
type loopKind int

const (
	loopWhile loopKind = iota
	loopEvery
	loopRepeat
)

// loopExpr compiles while/until/every/repeat in expression position. The
// loop fails unless a break delegates an outcome.
func (c *compiler) loopExpr(kind loopKind, head, body ast.Node, until bool) {
	c.loopCompile(kind, head, body, until, false)
}

// loopCompile is the shared loop lowering; statement reports statement
// position (the body compiles as a statement, break outcomes are bounded
// and discarded, and a finished loop falls through instead of failing).
func (c *compiler) loopCompile(kind loopKind, head, body ast.Node, until, statement bool) {
	d := c.depth
	ctx := &loopCtx{entryDepth: d, statement: statement}
	c.loops = append(c.loops, ctx)
	defer func() { c.loops = c.loops[:len(c.loops)-1] }()

	auxHead := c.newAux()
	auxBody := c.newAux()
	ctx.aux = auxHead
	ctx.nextAux = auxBody

	var exits []int // sites to patch to the loop exit
	top := int(c.here())
	var headSite int
	switch kind {
	case loopWhile:
		headSite = c.emit(OpMark, -1, auxHead, 0)
		c.expr(head)
		c.emit(OpCut, 0, auxHead, 0)
		c.emit(OpPop, 0, 0, 0)
		if until {
			// Condition success exits an until loop…
			exits = append(exits, c.emit(OpJump, -1, 0, 0))
			// …and condition failure runs the body.
			c.patchA(headSite)
			c.depth = d
			headSite = -1
		}
	case loopEvery:
		headSite = c.emit(OpMark, -1, auxHead, 0)
		c.expr(head)
		c.emit(OpPop, 0, 0, 0)
	case loopRepeat:
		headSite = -1
		// repeat cuts/continues on the body cell alone.
		ctx.aux = auxBody
	}

	// Body: bounded in expression loops, structural in statement loops.
	// With no body there is nothing to bound and no `next` to anchor.
	if body != nil {
		ctx.inBody = true
		bodyMark := c.emit(OpMark, -1, auxBody, 0)
		if statement {
			c.stmt(body)
			c.emit(OpCut, 0, auxBody, 0)
		} else {
			c.expr(body)
			c.emit(OpCut, 0, auxBody, 0)
			c.emit(OpPop, 0, 0, 0)
		}
		ctx.inBody = false
		// Body failure lands at the continue point too (the body is
		// bounded — its failure is indistinguishable from completion).
		c.patchA(bodyMark)
		c.depth = d
	}
	cont := int(c.here())
	switch kind {
	case loopWhile, loopRepeat:
		c.emit(OpJump, int32(top), 0, 0)
	case loopEvery:
		c.emit(OpFail, 0, 0, 0) // resume the generator
	}
	for _, site := range ctx.nexts {
		c.code.Instrs[site].A = int32(cont)
	}

	// Loop exit: the head is spent (condition failed / generator dry).
	if headSite >= 0 {
		c.patchA(headSite)
	}
	for _, site := range exits {
		c.patchA(site)
	}
	c.depth = d
	if !statement {
		// The loop expression itself fails; only break reaches the end.
		c.emit(OpFail, 0, 0, 0)
		c.depth = d + 1
	}
	for _, site := range ctx.breaks {
		c.patchA(site)
	}
}

// breakFrom compiles break [e] against the innermost loop: discard the
// loop's choice points and operand-stack growth, then deliver the outcome —
// delegated generatively in expression loops, bounded and discarded in
// statement loops.
func (c *compiler) breakFrom(n ast.Node, e ast.Node) {
	if len(c.loops) == 0 {
		c.unsupported(n, "break outside a loop")
	}
	ctx := c.loops[len(c.loops)-1]
	c.emit(OpCut, 0, ctx.aux, 0)
	if !ctx.statement && e == nil {
		// Bare break: the loop expression's outcome is Empty.
		c.emit(OpFail, 0, 0, 0)
		return
	}
	if k := c.depth - ctx.entryDepth; k > 0 {
		c.emit(OpPopN, int32(k), 0, 0)
	}
	if ctx.statement {
		if e != nil {
			c.boundedDiscard(e)
		}
	} else {
		c.expr(e)
	}
	ctx.breaks = append(ctx.breaks, c.emit(OpJump, -1, 0, 0))
}

// nextFrom compiles next: abandon the current body iteration of the
// nearest loop whose body we are in, discarding everything in between.
func (c *compiler) nextFrom(n ast.Node) {
	var ctx *loopCtx
	for i := len(c.loops) - 1; i >= 0; i-- {
		if c.loops[i].inBody {
			ctx = c.loops[i]
			break
		}
	}
	if ctx == nil {
		c.unsupported(n, "next outside a loop body")
	}
	c.emit(OpCut, 0, ctx.nextAux, 0)
	if k := c.depth - ctx.entryDepth; k > 0 {
		c.emit(OpPopN, int32(k), 0, 0)
	}
	ctx.nexts = append(ctx.nexts, c.emit(OpJump, -1, 0, 0))
}
