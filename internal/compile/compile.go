package compile

import (
	"junicon/internal/ast"
	"junicon/internal/transform"
	"junicon/internal/value"
)

// Expr lowers a normalized top-level expression into bytecode. Unknown
// names auto-create globals (via env.DefineGlobal), matching the
// interpreter's top-of-session rule; x_N temporaries become frame slots.
// Unsupported forms return *Unsupported — the caller falls back to the
// tree walk.
func Expr(n ast.Node, env Env) (code *Code, err error) {
	c := newCompiler(env, false)
	defer c.trap(&err)
	c.expr(n)
	c.emit(OpYield, 0, 0, 0)
	c.emit(OpFail, 0, 0, 0)
	return c.finish(), nil
}

// Proc lowers a procedure declaration into bytecode: parameters occupy the
// leading slots, locals and temporaries follow (numbered by the
// transform.SlotCandidates order as they resolve), and the control
// skeleton — suspend / return / fail, loops, case — compiles structurally,
// exactly as the interpreter executes it.
func Proc(d *ast.ProcDecl, env Env) (code *Code, err error) {
	c := newCompiler(env, true)
	defer c.trap(&err)
	c.code.Name = d.Name
	c.code.Params = len(d.Params)
	for _, p := range d.Params {
		c.slot(p)
	}
	// Pre-seed the slot numbering order (parameters already claimed):
	// candidates resolve lazily, but enumerating them here keeps the
	// printed slot table stable however control flow visits names.
	c.candidates = transform.SlotCandidates(d.Params, d.Body)
	for _, s := range d.Body.Stmts {
		c.stmt(s)
	}
	// Falling off the end fails the procedure (Icon semantics): no
	// resumable state survives.
	c.emit(OpReturnFail, 0, 0, 0)
	return c.finish(), nil
}

// compiler is the single-pass lowering state for one unit.
type compiler struct {
	env        Env
	procMode   bool
	code       *Code
	depth      int // static operand-stack depth at the current pc
	slotIdx    map[string]int
	constIdx   map[string]int
	globalIdx  map[string]int
	resolved   map[string]int8 // name → resolution kind already taken
	candidates []string
	loops      []*loopCtx
}

const (
	resSlot int8 = iota + 1
	resGlobal
	resConst
)

// loopCtx is the compile-time context of one lexically enclosing loop.
type loopCtx struct {
	aux        int32 // aux cell whose barrier marks the current iteration
	entryDepth int   // operand-stack depth at loop entry
	breaks     []int // Jump sites to patch to the loop exit
	statement  bool  // statement-position loop (break outcome is bounded)
	nextAux    int32 // aux cell bounding the body (cut target for next)
	nexts      []int // Jump sites to patch to the continue point
	inBody     bool  // currently compiling the loop body (next's domain)
}

func newCompiler(env Env, procMode bool) *compiler {
	return &compiler{
		env:       env,
		procMode:  procMode,
		code:      &Code{},
		slotIdx:   map[string]int{},
		constIdx:  map[string]int{},
		globalIdx: map[string]int{},
		resolved:  map[string]int8{},
	}
}

func (c *compiler) trap(err *error) {
	if r := recover(); r != nil {
		if u, ok := r.(*Unsupported); ok {
			*err = u
			return
		}
		panic(r)
	}
}

func (c *compiler) unsupported(n ast.Node, reason string) {
	var at ast.Pos
	if n != nil {
		at = n.Pos()
	}
	panic(&Unsupported{Reason: reason, At: at})
}

func (c *compiler) finish() *Code {
	return c.code
}

// ----- emission helpers -----

// stackEffect is the net operand-stack change of one instruction.
func stackEffect(i Instr) int {
	switch i.Op {
	case OpConst, OpNull, OpLoadSlot, OpLoadGlobal:
		return 1
	case OpPop, OpYield, OpReturn, OpLimitBegin, OpArith, OpCmp, OpCaseEq,
		OpIndex, OpIndexVar, OpStoreVar, OpAugVar, OpCmpAugVar:
		return -1
	case OpAugSlot, OpCmpAugSlot, OpAugGlobal, OpCmpAugGlobal:
		return 0
	case OpPopN:
		return -int(i.A)
	case OpToBy, OpSection:
		return -2
	case OpMakeList:
		return 1 - int(i.A)
	case OpCall, OpCall1:
		return -int(i.A)
	case OpCallNative:
		return 1 - int(i.A)
	default:
		return 0
	}
}

func (c *compiler) emit(op Op, a, b, cc int32) int {
	in := Instr{Op: op, A: a, B: b, C: cc}
	c.code.Instrs = append(c.code.Instrs, in)
	c.depth += stackEffect(in)
	pc := len(c.code.Instrs) - 1
	switch op {
	case OpYield:
		c.addResume(pc, "yield")
	case OpMark:
		c.addResume(pc, "mark")
	case OpFork:
		c.addResume(pc, "fork")
	case OpRepAlt:
		c.addResume(pc, "rep-alt")
	case OpCall:
		c.addResume(pc, "call")
	case OpBang:
		c.addResume(pc, "bang")
	case OpToBy:
		c.addResume(pc, "to-by")
	}
	return pc
}

func (c *compiler) addResume(pc int, kind string) {
	c.code.Resumes = append(c.code.Resumes, Resume{PC: pc, Kind: kind})
}

// here is the pc of the next instruction to be emitted.
func (c *compiler) here() int32 { return int32(len(c.code.Instrs)) }

// patchA points the jump/handler operand of the instruction at site to the
// current pc.
func (c *compiler) patchA(site int) { c.code.Instrs[site].A = c.here() }

func (c *compiler) newAux() int32 {
	c.code.NumAux++
	return int32(c.code.NumAux - 1)
}

// slot returns (allocating if needed) the slot of a local name.
func (c *compiler) slot(name string) int32 {
	if i, ok := c.slotIdx[name]; ok {
		return int32(i)
	}
	i := len(c.code.Slots)
	c.slotIdx[name] = i
	c.code.Slots = append(c.code.Slots, name)
	c.resolved[name] = resSlot
	return int32(i)
}

// hiddenSlot allocates an unnamed compiler-internal slot (case subjects).
// The parenthesized name cannot collide with source identifiers.
func (c *compiler) hiddenSlot(kind string) int32 {
	name := "(" + kind + ")"
	for {
		if _, ok := c.slotIdx[name]; !ok {
			break
		}
		name += "'"
	}
	return c.slot(name)
}

// global returns the Globals index of cell.
func (c *compiler) global(name string, cell *value.Var) int32 {
	if i, ok := c.globalIdx[name]; ok {
		return int32(i)
	}
	i := len(c.code.Globals)
	c.globalIdx[name] = i
	c.code.Globals = append(c.code.Globals, cell)
	c.code.GlobalNames = append(c.code.GlobalNames, name)
	c.resolved[name] = resGlobal
	return int32(i)
}

// constant interns v in the constant pool; key dedups literals ("" means
// always append).
func (c *compiler) constant(v value.V, key string) int32 {
	if key != "" {
		if i, ok := c.constIdx[key]; ok {
			return int32(i)
		}
	}
	i := len(c.code.Consts)
	c.code.Consts = append(c.code.Consts, v)
	if key != "" {
		c.constIdx[key] = i
	}
	return int32(i)
}

// ----- name resolution -----

// loadName emits a load of name, resolving exactly as the interpreter
// does: scope chain (slots), then globals, then builtins/natives; unknown
// names default to locals in procedure mode and auto-create globals at top
// level.
func (c *compiler) loadName(n ast.Node, name string, tmp bool) {
	if i, ok := c.slotIdx[name]; ok {
		c.emit(OpLoadSlot, int32(i), 0, 0)
		return
	}
	if tmp {
		// x_N temporaries are always frame-local; BindIn defines them
		// before any TmpRef reads (guaranteed by the normal form).
		c.emit(OpLoadSlot, c.slot(name), 0, 0)
		return
	}
	if cell, ok := c.env.LookupGlobal(name); ok {
		c.emit(OpLoadGlobal, c.global(name, cell), 0, 0)
		return
	}
	if v, ok := c.env.LookupConst(name); ok {
		c.resolved[name] = resConst
		c.emit(OpConst, c.constant(v, "name:"+name), 0, 0)
		return
	}
	if c.procMode {
		// Icon default-local rule.
		c.emit(OpLoadSlot, c.slot(name), 0, 0)
		return
	}
	if c.env.DefineGlobal == nil {
		c.unsupported(n, "unknown name "+name)
	}
	cell := c.env.DefineGlobal(name)
	c.emit(OpLoadGlobal, c.global(name, cell), 0, 0)
}

// storeName emits a store to name (value on top of stack stays as the
// expression's result).
func (c *compiler) storeName(n ast.Node, name string, tmp bool) {
	if i, ok := c.slotIdx[name]; ok {
		c.emit(OpStoreSlot, int32(i), 0, 0)
		return
	}
	if tmp {
		c.emit(OpStoreSlot, c.slot(name), 0, 0)
		return
	}
	if cell, ok := c.env.LookupGlobal(name); ok {
		c.emit(OpStoreGlobal, c.global(name, cell), 0, 0)
		return
	}
	if _, ok := c.env.LookupConst(name); ok {
		// Assigning a builtin raises at drive time; let the tree walk
		// produce that error.
		c.unsupported(n, "assignment to builtin "+name)
	}
	if c.procMode {
		c.emit(OpStoreSlot, c.slot(name), 0, 0)
		return
	}
	if c.env.DefineGlobal == nil {
		c.unsupported(n, "unknown assignment target "+name)
	}
	cell := c.env.DefineGlobal(name)
	c.emit(OpStoreGlobal, c.global(name, cell), 0, 0)
}
