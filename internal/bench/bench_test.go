package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func fastCfg() Config {
	return Config{Warmup: 2, Iterations: 5, MinIterTime: time.Millisecond}
}

func TestRunMeasuresSomething(t *testing.T) {
	sink := 0
	r := Run("spin", fastCfg(), func() {
		for i := 0; i < 1000; i++ {
			sink += i
		}
	})
	if r.Mean <= 0 {
		t.Fatalf("mean = %v", r.Mean)
	}
	if r.Iterations != 5 {
		t.Fatalf("iterations = %d", r.Iterations)
	}
	if r.Batch < 1 {
		t.Fatalf("batch = %d", r.Batch)
	}
	_ = sink
}

func TestRunDistinguishesWorkloads(t *testing.T) {
	sink := 0.0
	light := Run("light", fastCfg(), func() {
		for i := 0; i < 100; i++ {
			sink += float64(i)
		}
	})
	heavy := Run("heavy", fastCfg(), func() {
		for i := 0; i < 100000; i++ {
			sink += float64(i)
		}
	})
	if heavy.Mean < 10*light.Mean {
		t.Fatalf("1000x workload measured only %.1fx slower (light=%v heavy=%v)",
			heavy.Mean/light.Mean, light.Mean, heavy.Mean)
	}
}

func TestNormalize(t *testing.T) {
	rs := []Result{
		{Name: "a", Mean: 2.0, CI99: 0.2},
		{Name: "base", Mean: 1.0, CI99: 0.1},
		{Name: "c", Mean: 0.5},
	}
	norm, err := Normalize(rs, "base")
	if err != nil {
		t.Fatal(err)
	}
	if norm[0].Ratio != 2.0 || norm[1].Ratio != 1.0 || norm[2].Ratio != 0.5 {
		t.Fatalf("ratios = %v %v %v", norm[0].Ratio, norm[1].Ratio, norm[2].Ratio)
	}
	if norm[0].RatioCI != 0.2 {
		t.Fatalf("ratio ci = %v", norm[0].RatioCI)
	}
	if _, err := Normalize(rs, "missing"); err == nil {
		t.Fatal("missing baseline must error")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{1, 2, 3, 4})
	if m != 2.5 {
		t.Fatalf("mean = %v", m)
	}
	if s < 1.29 || s > 1.30 {
		t.Fatalf("std = %v", s)
	}
	m, s = meanStd([]float64{7})
	if m != 7 || s != 0 {
		t.Fatalf("singleton: %v %v", m, s)
	}
}

func TestTableAndBarsRender(t *testing.T) {
	rs := []Result{
		{Name: "Junicon/Sequential", Mean: 0.004, CI99: 0.0001, Batch: 3, Iterations: 5},
		{Name: "Java/MapReduce", Mean: 0.001, CI99: 0.00005, Batch: 10, Iterations: 5},
	}
	norm, err := Normalize(rs, "Java/MapReduce")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Table(&buf, "Lightweight", norm)
	out := buf.String()
	for _, want := range []string{"Lightweight", "Junicon/Sequential", "4.000x", "1.000x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	Bars(&buf, "Lightweight", norm)
	if !strings.Contains(buf.String(), "#") {
		t.Fatalf("bars missing:\n%s", buf.String())
	}
	// The 4x bar must be visibly longer than the 1x bar.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Fatalf("log bars not ordered:\n%s", buf.String())
	}
}

func TestCalibrateGrowsBatch(t *testing.T) {
	n := calibrate(func() {}, 2*time.Millisecond)
	if n < 100 {
		t.Fatalf("empty op batch = %d, expected large", n)
	}
}

func TestSortByName(t *testing.T) {
	rs := []Result{{Name: "b"}, {Name: "a"}}
	SortByName(rs)
	if rs[0].Name != "a" {
		t.Fatal("sort")
	}
}
