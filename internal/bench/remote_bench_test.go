package bench

// BenchmarkRemotePipe: the loopback transport ablation. The same integer
// stream is drained through an in-process pipe and through a remote pipe
// over loopback TCP, across a sweep of buffer sizes (= credit bounds).
// The buffer is the §3B queue bound in both cases; the sweep shows how
// much of the in-process pipe's throughput survives the framing, syscalls
// and credit round-trips of the network transport, and how larger credit
// windows amortize them — the remote analogue of DESIGN.md's buffer
// ablation.

import (
	"fmt"
	"testing"

	"junicon/internal/core"
	"junicon/internal/pipe"
	"junicon/internal/remote"
	"junicon/internal/value"
)

// benchStream is the per-op workload: an integer stream of this length.
const benchStream = 1000

// startBenchServer launches a loopback server serving the integer stream.
func startBenchServer(tb testing.TB) string {
	tb.Helper()
	srv := remote.NewServer()
	srv.Register("ints", func(args []value.V) (core.Gen, error) {
		return core.IntRange(1, benchStream), nil
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { srv.Close() })
	return addr.String()
}

// drainRemote opens, drains and closes one remote stream.
func drainRemote(tb testing.TB, addr string, buffer int) {
	p := remote.Open(addr, "ints", nil, remote.Config{Buffer: buffer})
	n := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		n++
	}
	if err := p.Err(); err != nil {
		tb.Fatal(err)
	}
	if n != benchStream {
		tb.Fatalf("drained %d values, want %d", n, benchStream)
	}
	p.Stop()
}

// drainLocal drains the same stream through an in-process pipe.
func drainLocal(tb testing.TB, buffer int) {
	p := pipe.New(core.NewFirstClass(core.IntRange(1, benchStream)), buffer)
	n := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		n++
	}
	if err := p.Err(); err != nil {
		tb.Fatal(err)
	}
	if n != benchStream {
		tb.Fatalf("drained %d values, want %d", n, benchStream)
	}
	p.Stop()
}

var remoteSweep = []int{1, 4, 64, 1024}

func BenchmarkRemotePipe(b *testing.B) {
	addr := startBenchServer(b)
	for _, buf := range remoteSweep {
		b.Run(fmt.Sprintf("remote/buffer=%d", buf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				drainRemote(b, addr, buf)
			}
		})
	}
	for _, buf := range remoteSweep {
		b.Run(fmt.Sprintf("local/buffer=%d", buf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				drainLocal(b, buf)
			}
		})
	}
}

// TestRemotePipeBenchPath keeps the benchmark path under plain `go test`
// (and -race): one drain per sweep point, both transports.
func TestRemotePipeBenchPath(t *testing.T) {
	addr := startBenchServer(t)
	for _, buf := range remoteSweep {
		drainRemote(t, addr, buf)
		drainLocal(t, buf)
	}
}
