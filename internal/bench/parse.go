package bench

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parsing for `go test -bench` output, feeding cmd/benchjson. The text
// format is the stable interface the Go tool prints:
//
//	BenchmarkKernelPipeThroughput-8   6522712    184.4 ns/op    32 B/op    2 allocs/op
//
// Only benchmark result lines are parsed; headers, PASS/ok trailers and
// sub-benchmark log output are skipped.

// GoBenchResult is one parsed benchmark line. BytesPerOp/AllocsPerOp are -1
// when the run did not use -benchmem. Extra holds any further unit pairs
// (e.g. MB/s, custom b.ReportMetric units) keyed by unit.
//
// Name is the benchmark function (suffix-free); Procs is the GOMAXPROCS
// suffix, 1 when the line carries none (the Go tool omits it at
// GOMAXPROCS=1). Series keys the (name, procs) pair — under -cpu=1,4 the
// same function produces BenchmarkX and BenchmarkX-4 lines, and consumers
// comparing runs over time must not collapse them into one curve.
type GoBenchResult struct {
	Name        string             `json:"name"`
	Series      string             `json:"series"`
	Procs       int                `json:"procs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// ParseGoBench reads `go test -bench` output and returns its benchmark
// lines in order. Non-benchmark lines are ignored; a malformed line that
// does start with "Benchmark" is an error, so truncated output is caught
// rather than silently dropped.
func ParseGoBench(r io.Reader) ([]GoBenchResult, error) {
	var out []GoBenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A bare "BenchmarkFoo" header (no fields after the name) is the
		// -v preamble line, not a result.
		if len(fields) < 3 {
			continue
		}
		res, err := parseLine(fields)
		if err != nil {
			return nil, fmt.Errorf("bench: %q: %w", line, err)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(fields []string) (GoBenchResult, error) {
	res := GoBenchResult{BytesPerOp: -1, AllocsPerOp: -1, NsPerOp: -1, Procs: 1}
	res.Name = fields[0]
	res.Series = res.Name
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil && p > 0 {
			res.Procs = p
			res.Name = res.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return res, fmt.Errorf("bad iteration count %q", fields[1])
	}
	res.Iterations = iters
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return res, fmt.Errorf("bad value %q", fields[i])
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		default:
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[unit] = v
		}
	}
	return res, nil
}
