// Package bench is the measurement harness of §VII — the analogue of the
// Java Microbenchmarking Harness used in the paper: warmup iterations
// followed by measured iterations (the paper uses 20 + 20), with means and
// 99% confidence intervals, and normalization of execution times against a
// designated baseline for Figure 6's presentation.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Config controls a benchmark run.
type Config struct {
	// Warmup is the number of warmup iterations (default 20, as in §VII).
	Warmup int
	// Iterations is the number of measured iterations (default 20).
	Iterations int
	// MinIterTime batches the workload so each iteration runs at least
	// this long (default 10ms), for clock-resolution hygiene.
	MinIterTime time.Duration
}

func (c Config) withDefaults() Config {
	if c.Warmup <= 0 {
		c.Warmup = 20
	}
	if c.Iterations <= 0 {
		c.Iterations = 20
	}
	if c.MinIterTime <= 0 {
		c.MinIterTime = 10 * time.Millisecond
	}
	return c
}

// Result is one benchmark's measurement.
type Result struct {
	Name string
	// Mean is seconds per operation.
	Mean float64
	// Std is the sample standard deviation of per-iteration means.
	Std float64
	// CI99 is the half-width of the 99% confidence interval of the mean.
	CI99 float64
	// Iterations measured; Batch operations per iteration.
	Iterations int
	Batch      int
}

// Run benchmarks f under cfg.
func Run(name string, cfg Config, f func()) Result {
	cfg = cfg.withDefaults()
	batch := calibrate(f, cfg.MinIterTime)
	for i := 0; i < cfg.Warmup; i++ {
		runBatch(f, batch)
	}
	samples := make([]float64, cfg.Iterations)
	for i := range samples {
		samples[i] = runBatch(f, batch) / float64(batch)
	}
	mean, std := meanStd(samples)
	// z(0.995) = 2.576: the paper reports 99% confidence whiskers.
	ci := 2.576 * std / math.Sqrt(float64(len(samples)))
	return Result{
		Name:       name,
		Mean:       mean,
		Std:        std,
		CI99:       ci,
		Iterations: cfg.Iterations,
		Batch:      batch,
	}
}

// calibrate finds a batch size whose runtime is at least minTime.
func calibrate(f func(), minTime time.Duration) int {
	batch := 1
	for {
		d := time.Duration(runBatch(f, batch) * float64(time.Second))
		if d >= minTime || batch >= 1<<20 {
			return batch
		}
		grow := int(float64(minTime)/math.Max(float64(d), 1) + 1)
		if grow < 2 {
			grow = 2
		}
		if grow > 100 {
			grow = 100
		}
		batch *= grow
	}
}

func runBatch(f func(), n int) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		f()
	}
	return time.Since(start).Seconds()
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)-1))
	return mean, std
}

// Normalized is a result scaled against a baseline mean, the form Figure 6
// plots ("execution time is normalized with respect to that of the Java
// parallel stream benchmark").
type Normalized struct {
	Result
	// Ratio is Mean / baseline Mean.
	Ratio float64
	// RatioCI is the normalized 99% half-width.
	RatioCI float64
}

// Normalize scales results against the result named baseline.
func Normalize(results []Result, baseline string) ([]Normalized, error) {
	var base *Result
	for i := range results {
		if results[i].Name == baseline {
			base = &results[i]
			break
		}
	}
	if base == nil {
		return nil, fmt.Errorf("bench: baseline %q not among results", baseline)
	}
	out := make([]Normalized, len(results))
	for i, r := range results {
		out[i] = Normalized{
			Result:  r,
			Ratio:   r.Mean / base.Mean,
			RatioCI: r.CI99 / base.Mean,
		}
	}
	return out, nil
}

// Table renders results as an aligned text table.
func Table(w io.Writer, title string, results []Normalized) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-28s %14s %12s %12s %8s\n", "benchmark", "mean", "ci99", "normalized", "batch")
	for _, r := range results {
		fmt.Fprintf(w, "%-28s %14s %12s %9.3fx ±%.3f %6d\n",
			r.Name, fmtDuration(r.Mean), fmtDuration(r.CI99), r.Ratio, r.RatioCI, r.Batch)
	}
}

func fmtDuration(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}

// Bars renders a log-scale text histogram of normalized ratios — the shape
// of Figure 6's log-axis bar chart.
func Bars(w io.Writer, title string, results []Normalized) {
	fmt.Fprintf(w, "%s  (log scale, x = normalized execution time)\n", title)
	maxRatio := 1.0
	for _, r := range results {
		if r.Ratio > maxRatio {
			maxRatio = r.Ratio
		}
	}
	const width = 50
	logMax := math.Log10(maxRatio * 1.1)
	if logMax <= 0 {
		logMax = 1
	}
	for _, r := range results {
		// Map [0.1, maxRatio] logarithmically onto the bar width.
		l := math.Log10(math.Max(r.Ratio, 0.101)) - math.Log10(0.1)
		span := logMax - math.Log10(0.1)
		n := int(l / span * width)
		if n < 1 {
			n = 1
		}
		fmt.Fprintf(w, "%-28s |%s %.2fx\n", r.Name, strings.Repeat("#", n), r.Ratio)
	}
}

// SortByName orders results deterministically for stable output.
func SortByName(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Name < rs[j].Name })
}
