package bench

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: junicon
cpu: AMD EPYC 7B13
BenchmarkKernelPipeThroughput-8   	 6522712	       184.4 ns/op	      32 B/op	       2 allocs/op
BenchmarkQueuePutTake-8           	22752486	        52.47 ns/op
BenchmarkFig2_PipelineDecomposition-8	     100	  10588776 ns/op	  52.3 MB/s
PASS
ok  	junicon	3.813s
`

func TestParseResults(t *testing.T) {
	rs, err := ParseGoBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}

	r := rs[0]
	if r.Name != "BenchmarkKernelPipeThroughput" || r.Procs != 8 {
		t.Errorf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Series != "BenchmarkKernelPipeThroughput-8" {
		t.Errorf("series = %q", r.Series)
	}
	if r.Iterations != 6522712 || r.NsPerOp != 184.4 {
		t.Errorf("iters/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.BytesPerOp != 32 || r.AllocsPerOp != 2 {
		t.Errorf("B/allocs = %d/%d", r.BytesPerOp, r.AllocsPerOp)
	}

	if r := rs[1]; r.BytesPerOp != -1 || r.AllocsPerOp != -1 {
		t.Errorf("no -benchmem run should report -1, got %d/%d", r.BytesPerOp, r.AllocsPerOp)
	}
	if r := rs[2]; r.Extra["MB/s"] != 52.3 {
		t.Errorf("extra units = %v", r.Extra)
	}
}

// TestParseCPUVariants pins the -cpu contract: the same benchmark run at
// several GOMAXPROCS values must parse into distinct series, and a line
// with no -N suffix (GOMAXPROCS=1, where the Go tool omits it) reports
// procs 1 — not 0 — so downstream ratio math never divides by zero.
func TestParseCPUVariants(t *testing.T) {
	const out = `BenchmarkKernelPipeThroughputBatched   	 1000000	       120.0 ns/op
BenchmarkKernelPipeThroughputBatched-4 	 4000000	        40.0 ns/op
BenchmarkVMPrimes-4                    	    5000	    250000 ns/op
`
	rs, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	if rs[0].Name != "BenchmarkKernelPipeThroughputBatched" || rs[0].Procs != 1 {
		t.Errorf("no-suffix line: name/procs = %q/%d, want procs 1", rs[0].Name, rs[0].Procs)
	}
	if rs[1].Name != rs[0].Name || rs[1].Procs != 4 {
		t.Errorf("suffixed line: name/procs = %q/%d", rs[1].Name, rs[1].Procs)
	}
	if rs[0].Series == rs[1].Series {
		t.Errorf("cpu variants share series %q; must be distinct", rs[0].Series)
	}
	if rs[0].Series != "BenchmarkKernelPipeThroughputBatched" ||
		rs[1].Series != "BenchmarkKernelPipeThroughputBatched-4" {
		t.Errorf("series = %q, %q", rs[0].Series, rs[1].Series)
	}
	if rs[2].Series != "BenchmarkVMPrimes-4" {
		t.Errorf("series = %q", rs[2].Series)
	}
}

func TestParseResultsMalformed(t *testing.T) {
	if _, err := ParseGoBench(strings.NewReader("BenchmarkBroken-8 notanumber 5 ns/op\n")); err == nil {
		t.Fatal("malformed benchmark line should error")
	}
	// Headers and -v preamble lines are skipped, not errors.
	rs, err := ParseGoBench(strings.NewReader("BenchmarkFoo\ngoos: linux\n"))
	if err != nil || len(rs) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", rs, err)
	}
}
