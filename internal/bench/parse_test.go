package bench

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: junicon
cpu: AMD EPYC 7B13
BenchmarkKernelPipeThroughput-8   	 6522712	       184.4 ns/op	      32 B/op	       2 allocs/op
BenchmarkQueuePutTake-8           	22752486	        52.47 ns/op
BenchmarkFig2_PipelineDecomposition-8	     100	  10588776 ns/op	  52.3 MB/s
PASS
ok  	junicon	3.813s
`

func TestParseResults(t *testing.T) {
	rs, err := ParseGoBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}

	r := rs[0]
	if r.Name != "BenchmarkKernelPipeThroughput" || r.Procs != 8 {
		t.Errorf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 6522712 || r.NsPerOp != 184.4 {
		t.Errorf("iters/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.BytesPerOp != 32 || r.AllocsPerOp != 2 {
		t.Errorf("B/allocs = %d/%d", r.BytesPerOp, r.AllocsPerOp)
	}

	if r := rs[1]; r.BytesPerOp != -1 || r.AllocsPerOp != -1 {
		t.Errorf("no -benchmem run should report -1, got %d/%d", r.BytesPerOp, r.AllocsPerOp)
	}
	if r := rs[2]; r.Extra["MB/s"] != 52.3 {
		t.Errorf("extra units = %v", r.Extra)
	}
}

func TestParseResultsMalformed(t *testing.T) {
	if _, err := ParseGoBench(strings.NewReader("BenchmarkBroken-8 notanumber 5 ns/op\n")); err == nil {
		t.Fatal("malformed benchmark line should error")
	}
	// Headers and -v preamble lines are skipped, not errors.
	rs, err := ParseGoBench(strings.NewReader("BenchmarkFoo\ngoos: linux\n"))
	if err != nil || len(rs) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", rs, err)
	}
}
