package pool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestSubmitReturnsResults(t *testing.T) {
	p := New(4)
	defer p.Shutdown()
	type fut interface{ Get() (int, error) }
	var fs []fut
	for i := 0; i < 20; i++ {
		fs = append(fs, Submit(p, func() (int, error) { return i * i, nil }))
	}
	for i, f := range fs {
		v, err := f.Get()
		if err != nil || v != i*i {
			t.Fatalf("task %d = %d, %v", i, v, err)
		}
	}
}

func TestBacklogCompletesOnShutdown(t *testing.T) {
	p := New(2)
	var done atomic.Int32
	const n = 50
	for i := 0; i < n; i++ {
		p.Go(func() { done.Add(1) })
	}
	p.Shutdown()
	if done.Load() != n {
		t.Fatalf("only %d/%d tasks ran before shutdown returned", done.Load(), n)
	}
}

func TestSubmitAfterShutdownFails(t *testing.T) {
	p := New(1)
	p.Shutdown()
	f := Submit(p, func() (int, error) { return 1, nil })
	if _, err := f.Get(); err != ErrShutdown {
		t.Fatalf("err = %v", err)
	}
	if err := p.Go(func() {}); err != ErrShutdown {
		t.Fatalf("Go err = %v", err)
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	p := New(1)
	defer p.Shutdown()
	boom := errors.New("boom")
	f := Submit(p, func() (int, error) { return 0, boom })
	if _, err := f.Get(); err != boom {
		t.Fatalf("err = %v", err)
	}
}

func TestTaskPanicFailsFutureNotWorker(t *testing.T) {
	p := New(1)
	defer p.Shutdown()
	f := Submit(p, func() (int, error) { panic("kaboom") })
	if _, err := f.Get(); err == nil {
		t.Fatal("panic should fail the future")
	}
	// The worker must survive to run further tasks.
	g := Submit(p, func() (int, error) { return 7, nil })
	if v, err := g.Get(); err != nil || v != 7 {
		t.Fatalf("worker died after panic: %v %v", v, err)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	p := New(2)
	p.Shutdown()
	p.Shutdown()
}

func TestParallelismBound(t *testing.T) {
	const workers = 3
	p := New(workers)
	defer p.Shutdown()
	var inFlight, peak atomic.Int32
	gate := make(chan struct{})
	var fs []interface{ Get() (int, error) }
	for i := 0; i < 12; i++ {
		fs = append(fs, Submit(p, func() (int, error) {
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			<-gate
			inFlight.Add(-1)
			return 0, nil
		}))
	}
	close(gate)
	for _, f := range fs {
		f.Get()
	}
	if peak.Load() > workers {
		t.Fatalf("peak parallelism %d exceeds %d workers", peak.Load(), workers)
	}
}
