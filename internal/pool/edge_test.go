package pool

import (
	"sync"
	"sync/atomic"
	"testing"

	"junicon/internal/telemetry"
)

// TestSubmitRacingShutdown races many submitters against Shutdown: every
// future must resolve — either with its task's value (accepted before the
// close) or with ErrShutdown — and the pool must quiesce.
func TestSubmitRacingShutdown(t *testing.T) {
	for round := 0; round < 20; round++ {
		p := New(4)
		const submitters = 8
		var wg sync.WaitGroup
		var ran, rejected atomic.Int64
		wg.Add(submitters)
		for i := 0; i < submitters; i++ {
			go func() {
				defer wg.Done()
				for j := 0; j < 50; j++ {
					fut := Submit(p, func() (int, error) { return j, nil })
					if _, err := fut.Get(); err != nil {
						if err != ErrShutdown {
							t.Errorf("unexpected error: %v", err)
						}
						rejected.Add(1)
						return
					}
					ran.Add(1)
				}
			}()
		}
		p.Shutdown()
		wg.Wait()
		if ran.Load()+rejected.Load() == 0 {
			t.Fatal("no futures resolved")
		}
	}
}

// TestBacklogFuturesResolveAfterShutdown queues a backlog behind a slow
// task on a single worker, shuts down, and checks every already-accepted
// future still delivers its value (drain-then-fail close semantics).
func TestBacklogFuturesResolveAfterShutdown(t *testing.T) {
	p := New(1)
	gate := make(chan struct{})
	first := Submit(p, func() (int, error) { <-gate; return 0, nil })
	var futs []interface{ Get() (int, error) }
	for i := 1; i <= 16; i++ {
		i := i
		futs = append(futs, Submit(p, func() (int, error) { return i, nil }))
	}
	done := make(chan struct{})
	go func() { p.Shutdown(); close(done) }()
	close(gate)
	<-done
	if _, err := first.Get(); err != nil {
		t.Fatalf("gated task: %v", err)
	}
	for i, f := range futs {
		v, err := f.Get()
		if err != nil || v != i+1 {
			t.Fatalf("backlog future %d: v=%d err=%v", i, v, err)
		}
	}
	if _, err := Submit(p, func() (int, error) { return 0, nil }).Get(); err != ErrShutdown {
		t.Fatalf("post-shutdown submit: err=%v, want ErrShutdown", err)
	}
}

// TestManySmallTasksStress floods the pool with tiny tasks from several
// goroutines (run under -race in CI): all tasks run exactly once.
func TestManySmallTasksStress(t *testing.T) {
	p := New(8)
	defer p.Shutdown()
	const producers, perProducer = 8, 500
	var ran atomic.Int64
	var wg sync.WaitGroup
	wg.Add(producers)
	for i := 0; i < producers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				fut := Submit(p, func() (int, error) {
					ran.Add(1)
					return 0, nil
				})
				if j%7 == 0 {
					fut.Get() // mix sync waits into the flood
				}
			}
		}()
	}
	wg.Wait()
	p.Shutdown()
	if got := ran.Load(); got != producers*perProducer {
		t.Fatalf("ran %d tasks, want %d", got, producers*perProducer)
	}
}

// TestPoolTelemetry runs gated tasks with metrics on and checks the pool
// instruments fire: task count, wait-time observations, and queue-depth /
// busy-worker gauges returning to zero at quiesce.
func TestPoolTelemetry(t *testing.T) {
	telemetry.SetMetrics(true)
	defer telemetry.SetMetrics(false)
	before := cPoolTasks.Load()
	waitBefore := hPoolWait.Snapshot().Count

	p := New(2)
	gate := make(chan struct{})
	var busySeen atomic.Int64
	for i := 0; i < 8; i++ {
		p.Go(func() {
			busySeen.Store(gPoolBusy.Load())
			<-gate
		})
	}
	close(gate)
	p.Shutdown()

	if got := cPoolTasks.Load() - before; got != 8 {
		t.Fatalf("pool.tasks advanced by %d, want 8", got)
	}
	if got := hPoolWait.Snapshot().Count - waitBefore; got != 8 {
		t.Fatalf("pool.task_wait_ns observations advanced by %d, want 8", got)
	}
	if busySeen.Load() < 1 {
		t.Fatalf("pool.workers_busy never observed positive")
	}
	if d := gPoolDepth.Load(); d != 0 {
		t.Fatalf("pool.queue_depth = %d after quiesce, want 0", d)
	}
	if b := gPoolBusy.Load(); b != 0 {
		t.Fatalf("pool.workers_busy = %d after quiesce, want 0", b)
	}
}
