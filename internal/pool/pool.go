// Package pool provides a fixed-size worker pool with future-valued task
// submission — the substrate playing the role of Java's thread-pool
// management (§5D: "thread creation and allocation leverage Java's
// facilities for thread pool management"). The data-parallel execution
// paths of the streams and mapreduce packages run on it.
package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"junicon/internal/inspect"
	"junicon/internal/queue"
	"junicon/internal/telemetry"
)

// Pool telemetry: queue depth and busy-worker gauges plus a task wait-time
// histogram (submit → start of execution). Metrics aggregate across all
// pools in the process; observation is decided per task at submit time, so
// an unobserved pool pays one atomic load per submission.
var (
	cPoolTasks = telemetry.NewCounter("pool.tasks")
	gPoolDepth = telemetry.NewGauge("pool.queue_depth")
	gPoolBusy  = telemetry.NewGauge("pool.workers_busy")
	hPoolWait  = telemetry.NewHistogram("pool.task_wait_ns")
)

// ErrShutdown is reported by Submit after Shutdown.
var ErrShutdown = errors.New("pool: shut down")

// Pool runs submitted tasks on a fixed set of worker goroutines.
type Pool struct {
	tasks *queue.LinkedBlocking[func()]
	wg    sync.WaitGroup
	size  int

	// ih is the pool's live-introspection handle, registered lazily on the
	// first submission while inspection is enabled. Produced counts
	// completed tasks; the depth probe reports the task backlog.
	ih atomic.Pointer[inspect.Handle]

	mu   sync.Mutex
	down bool
}

// New returns a pool of n workers; n <= 0 selects GOMAXPROCS.
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: queue.NewLinkedBlocking[func()](0), size: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

// Size reports the number of worker goroutines.
func (p *Pool) Size() int { return p.size }

// handle returns the pool's introspection handle, registering it on first
// use while inspection is enabled. Lazy registration means a pool created
// before Enable still shows up once it takes work.
func (p *Pool) handle() *inspect.Handle {
	if h := p.ih.Load(); h != nil {
		return h
	}
	if !inspect.On() {
		return nil
	}
	h := inspect.Register(0, inspect.KindPool, fmt.Sprintf("pool(workers=%d)", p.size))
	h.SetDepthProbe(func() (int, int) { return p.tasks.Len(), p.size })
	if !p.ih.CompareAndSwap(nil, h) {
		inspect.Unregister(h) // another submitter won the race
		return p.ih.Load()
	}
	return h
}

// enqueue puts a task on the work queue, wrapping it with metric updates
// when telemetry is on at submission time.
func (p *Pool) enqueue(task func()) error {
	if h := p.handle(); h != nil {
		inner := task
		task = func() {
			inner()
			h.Produced(1)
		}
	}
	if telemetry.On() {
		cPoolTasks.Inc()
		gPoolDepth.Add(1)
		inner := task
		start := time.Now()
		task = func() {
			gPoolDepth.Add(-1)
			hPoolWait.Observe(time.Since(start).Nanoseconds())
			gPoolBusy.Add(1)
			defer gPoolBusy.Add(-1)
			inner()
		}
		if err := p.tasks.Put(task); err != nil {
			gPoolDepth.Add(-1) // never enqueued
			return replaceClosed(err)
		}
		return nil
	}
	return replaceClosed(p.tasks.Put(task))
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		task, err := p.tasks.Take()
		if err != nil {
			return
		}
		task()
	}
}

// Submit schedules f and returns a future for its result. A panic inside f
// fails the future instead of crashing the worker.
func Submit[T any](p *Pool, f func() (T, error)) *queue.Future[T] {
	fut := queue.NewFuture[T]()
	task := func() {
		defer func() {
			if r := recover(); r != nil {
				fut.Fail(fmt.Errorf("pool: task panic: %v", r))
			}
		}()
		v, err := f()
		if err != nil {
			fut.Fail(err)
			return
		}
		fut.Set(v)
	}
	p.mu.Lock()
	down := p.down
	p.mu.Unlock()
	if down {
		fut.Fail(ErrShutdown)
		return fut
	}
	if err := p.enqueue(task); err != nil {
		fut.Fail(ErrShutdown)
	}
	return fut
}

// Go schedules f with no result.
func (p *Pool) Go(f func()) error {
	p.mu.Lock()
	down := p.down
	p.mu.Unlock()
	if down {
		return ErrShutdown
	}
	return p.enqueue(f)
}

func replaceClosed(err error) error {
	if err == queue.ErrClosed {
		return ErrShutdown
	}
	return err
}

// Shutdown stops accepting tasks, runs the backlog to completion, and waits
// for the workers to exit.
func (p *Pool) Shutdown() {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.down = true
	p.mu.Unlock()
	// Drain-then-fail close semantics let queued tasks finish.
	p.tasks.Close()
	p.wg.Wait()
	p.ih.Load().Close()
}
