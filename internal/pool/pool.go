// Package pool provides a fixed-size worker pool with future-valued task
// submission — the substrate playing the role of Java's thread-pool
// management (§5D: "thread creation and allocation leverage Java's
// facilities for thread pool management"). The data-parallel execution
// paths of the streams and mapreduce packages run on it.
package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"junicon/internal/queue"
)

// ErrShutdown is reported by Submit after Shutdown.
var ErrShutdown = errors.New("pool: shut down")

// Pool runs submitted tasks on a fixed set of worker goroutines.
type Pool struct {
	tasks *queue.LinkedBlocking[func()]
	wg    sync.WaitGroup

	mu   sync.Mutex
	down bool
}

// New returns a pool of n workers; n <= 0 selects GOMAXPROCS.
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: queue.NewLinkedBlocking[func()](0)}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		task, err := p.tasks.Take()
		if err != nil {
			return
		}
		task()
	}
}

// Submit schedules f and returns a future for its result. A panic inside f
// fails the future instead of crashing the worker.
func Submit[T any](p *Pool, f func() (T, error)) *queue.Future[T] {
	fut := queue.NewFuture[T]()
	task := func() {
		defer func() {
			if r := recover(); r != nil {
				fut.Fail(fmt.Errorf("pool: task panic: %v", r))
			}
		}()
		v, err := f()
		if err != nil {
			fut.Fail(err)
			return
		}
		fut.Set(v)
	}
	p.mu.Lock()
	down := p.down
	p.mu.Unlock()
	if down {
		fut.Fail(ErrShutdown)
		return fut
	}
	if err := p.tasks.Put(task); err != nil {
		fut.Fail(ErrShutdown)
	}
	return fut
}

// Go schedules f with no result.
func (p *Pool) Go(f func()) error {
	p.mu.Lock()
	down := p.down
	p.mu.Unlock()
	if down {
		return ErrShutdown
	}
	return replaceClosed(p.tasks.Put(f))
}

func replaceClosed(err error) error {
	if err == queue.ErrClosed {
		return ErrShutdown
	}
	return err
}

// Shutdown stops accepting tasks, runs the backlog to completion, and waits
// for the workers to exit.
func (p *Pool) Shutdown() {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.down = true
	p.mu.Unlock()
	// Drain-then-fail close semantics let queued tasks finish.
	p.tasks.Close()
	p.wg.Wait()
}
