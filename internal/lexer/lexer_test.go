package lexer

import (
	"strings"
	"testing"
)

func kinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Tokens(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks[:len(toks)-1] // drop EOF
}

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestIdentifiersAndKeywords(t *testing.T) {
	toks := kinds(t, "every x do foo_1")
	if toks[0].Kind != Keyword || toks[0].Text != "every" {
		t.Fatalf("tok0 = %v", toks[0])
	}
	if toks[1].Kind != Ident || toks[1].Text != "x" {
		t.Fatalf("tok1 = %v", toks[1])
	}
	if toks[3].Kind != Ident || toks[3].Text != "foo_1" {
		t.Fatalf("tok3 = %v", toks[3])
	}
}

func TestNumbers(t *testing.T) {
	toks := kinds(t, "42 3.25 1e3 2.5e-2 16r1f 0")
	wantKinds := []Kind{Int, Real, Real, Real, Int, Int}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Fatalf("tok %d (%q) kind = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestNumberDotDoesNotEatFieldAccess(t *testing.T) {
	toks := kinds(t, "1.x")
	if len(toks) != 3 || toks[0].Kind != Int || toks[1].Text != "." || toks[2].Text != "x" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestStringsAndEscapes(t *testing.T) {
	toks := kinds(t, `"a\tb\"c" 'xyz'`)
	if toks[0].Kind != Str || toks[0].Text != "a\tb\"c" {
		t.Fatalf("str = %q", toks[0].Text)
	}
	if toks[1].Kind != Cset || toks[1].Text != "xyz" {
		t.Fatalf("cset = %v", toks[1])
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Tokens(`"abc`); err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("err = %v", err)
	}
	if _, err := Tokens("\"ab\ncd\""); err == nil {
		t.Fatal("newline in string must error")
	}
}

func TestConcurrencyOperators(t *testing.T) {
	toks := kinds(t, "<> |<> |> @ ! ^ ||| || |")
	want := []string{"<>", "|<>", "|>", "@", "!", "^", "|||", "||", "|"}
	got := texts(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMaximalMunchAssignments(t *testing.T) {
	toks := kinds(t, "x +:= 1; y ||:= z; s <- t; a :=: b; c <-> d")
	joined := strings.Join(texts(toks), " ")
	for _, op := range []string{"+:=", "||:=", "<-", ":=:", "<->"} {
		if !strings.Contains(joined, op) {
			t.Fatalf("missing %q in %s", op, joined)
		}
	}
}

func TestComparisonOperators(t *testing.T) {
	toks := kinds(t, "a === b ~== c <<= d >>= e ~= f")
	got := texts(toks)
	want := []string{"a", "===", "b", "~==", "c", "<<=", "d", ">>=", "e", "~=", "f"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestAmpKeywords(t *testing.T) {
	toks := kinds(t, "&null &lcase x & y")
	if toks[0].Kind != AmpKw || toks[0].Text != "null" {
		t.Fatalf("tok0 = %v", toks[0])
	}
	if toks[1].Kind != AmpKw || toks[1].Text != "lcase" {
		t.Fatalf("tok1 = %v", toks[1])
	}
	if toks[3].Kind != Op || toks[3].Text != "&" {
		t.Fatalf("& operator = %v", toks[3])
	}
}

func TestCommentsSkipped(t *testing.T) {
	toks := kinds(t, "x # this is a comment\ny")
	if len(toks) != 2 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Fatalf("toks = %v", toks)
	}
	if toks[1].Line != 2 {
		t.Fatalf("line = %d", toks[1].Line)
	}
}

func TestPositions(t *testing.T) {
	toks := kinds(t, "a\n  bb\n   ccc")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Fatalf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Fatalf("bb at %d:%d", toks[1].Line, toks[1].Col)
	}
	if toks[2].Line != 3 || toks[2].Col != 4 {
		t.Fatalf("ccc at %d:%d", toks[2].Line, toks[2].Col)
	}
}

func TestNativeInvocationToken(t *testing.T) {
	toks := kinds(t, "this::hashNumber(x)")
	got := texts(toks)
	want := []string{"this", "::", "hashNumber", "(", "x", ")"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestFigure4Snippet(t *testing.T) {
	src := `
def chunk(e) {
  chunk = [];
  while put(chunk,@e) do {
    if (*chunk >= chunkSize) then { suspend chunk; chunk=[]; }};
  if (*chunk > 0) then { return chunk; };
}`
	toks, err := Tokens(src)
	if err != nil {
		t.Fatalf("figure 4 chunk: %v", err)
	}
	if len(toks) < 40 {
		t.Fatalf("too few tokens: %d", len(toks))
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	if _, err := Tokens("a ` b"); err == nil {
		t.Fatal("backquote should be a lex error")
	}
}
