// Package lexer tokenizes the Junicon subset: Unicon's operator-rich
// surface extended with the concurrency operators of Figure 1 (<>, |<>, |>)
// and the native-invocation separator :: of §4.
package lexer

import (
	"fmt"
	"strings"
)

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Keyword // reserved word: if, then, every, def, …
	AmpKw   // &-keyword: &null, &lcase, …
	Int     // integer literal
	Real    // real literal
	Str     // string literal (value unescaped)
	Cset    // cset literal (value unescaped)
	Op      // operator or punctuation
)

// Token is a lexed token.
type Token struct {
	Kind Kind
	Text string // identifier/keyword name, literal value, or operator text
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%d:%d %v %q", t.Line, t.Col, t.Kind, t.Text)
}

// reserved words of the subset.
var reserved = map[string]bool{
	"procedure": true, "method": true, "def": true, "end": true,
	"local": true, "static": true, "global": true, "record": true,
	"class": true, "if": true, "then": true, "else": true,
	"every": true, "while": true, "until": true, "repeat": true,
	"case": true, "of": true, "default": true, "to": true, "by": true,
	"break": true, "next": true, "return": true, "suspend": true,
	"fail": true, "not": true, "do": true, "var": true, "initial": true,
}

// operators, longest first so maximal munch works by simple ordering.
var operators = []string{
	"~===", "<<=", ">>=", "~==", "===", ":=:", "<->", "|<>",
	"+:=", "-:=", "*:=", "/:=", "%:=", "^:=", "<:=", ">:=", "=:=",
	"||:=", "|||:=", "++:=", "--:=", "**:=", "&:=", "?:=", "@:=",
	"<=:=", ">=:=", "~=:=", "==:=", "<<:=", ">>:=",
	"|||", "<<", ">>", "<=", ">=", "~=", "==", "<>", "|>", ":=", "<-",
	"++", "--", "**", "||", "::",
	"&", "|", "=", "<", ">", "!", "@", "^", "*", "/", "%", "+", "-",
	"~", "?", "\\", ".", ",", ";", ":", "(", ")", "[", "]", "{", "}",
}

// Lexer scans an input string.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

// Error is a lexical error with position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

// Tokens scans the whole input.
func Tokens(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return out, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

// Next scans one token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		start.Kind = EOF
		return start, nil
	}
	c := l.src[l.pos]
	switch {
	case isLetter(c) || c == '_':
		return l.lexIdent(start), nil
	case isDigit(c):
		return l.lexNumber(start)
	case c == '"':
		return l.lexQuoted(start, '"', Str)
	case c == '\'':
		return l.lexQuoted(start, '\'', Cset)
	case c == '&':
		if isLetter(l.peekAt(1)) {
			return l.lexAmpKeyword(start), nil
		}
	case c == '.':
		if isDigit(l.peekAt(1)) {
			return l.lexNumber(start)
		}
	}
	for _, op := range operators {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.advance(len(op))
			start.Kind = Op
			start.Text = op
			return start, nil
		}
	}
	return start, l.errf("unexpected character %q", c)
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

func (l *Lexer) lexIdent(t Token) Token {
	begin := l.pos
	for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
		l.advance(1)
	}
	t.Text = l.src[begin:l.pos]
	if reserved[t.Text] {
		t.Kind = Keyword
	} else {
		t.Kind = Ident
	}
	return t
}

func (l *Lexer) lexAmpKeyword(t Token) Token {
	l.advance(1) // &
	begin := l.pos
	for l.pos < len(l.src) && isLetter(l.src[l.pos]) {
		l.advance(1)
	}
	t.Kind = AmpKw
	t.Text = l.src[begin:l.pos]
	return t
}

func (l *Lexer) lexNumber(t Token) (Token, error) {
	begin := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.advance(1)
	}
	// Radix literal 16r1f.
	if l.pos < len(l.src) && (l.src[l.pos] == 'r' || l.src[l.pos] == 'R') && isAlnum(l.peekAt(1)) {
		l.advance(1)
		for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
			l.advance(1)
		}
		t.Kind = Int
		t.Text = l.src[begin:l.pos]
		return t, nil
	}
	isReal := false
	// Fraction — but not the section operator "1:..." nor field access.
	if l.pos < len(l.src) && l.src[l.pos] == '.' && isDigit(l.peekAt(1)) {
		isReal = true
		l.advance(1)
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.advance(1)
		}
	}
	// Exponent.
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		next := l.peekAt(1)
		if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peekAt(2))) {
			isReal = true
			l.advance(2)
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.advance(1)
			}
		}
	}
	t.Text = l.src[begin:l.pos]
	if isReal {
		t.Kind = Real
	} else {
		t.Kind = Int
	}
	return t, nil
}

func (l *Lexer) lexQuoted(t Token, quote byte, kind Kind) (Token, error) {
	l.advance(1)
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return t, l.errf("unterminated %c-quoted literal", quote)
		}
		c := l.src[l.pos]
		switch c {
		case quote:
			l.advance(1)
			t.Kind = kind
			t.Text = b.String()
			return t, nil
		case '\n':
			return t, l.errf("newline in %c-quoted literal", quote)
		case '\\':
			esc := l.peekAt(1)
			l.advance(2)
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '0':
				b.WriteByte(0)
			default:
				b.WriteByte('\\')
				b.WriteByte(esc)
			}
		default:
			b.WriteByte(c)
			l.advance(1)
		}
	}
}

func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isAlnum(c byte) bool  { return isLetter(c) || isDigit(c) }
