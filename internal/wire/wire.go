// Package wire implements the length-prefixed binary codec that carries
// Unicon values across process boundaries for remote pipes (see
// internal/remote). The paper's pipe |>e transports values through an
// in-memory blocking queue (§3B); nothing in the calculus requires both
// ends of that queue to share an address space, so this codec defines the
// on-the-wire form of every transportable value.V:
//
//   - null, integers (with transparent big-integer promotion), reals,
//     strings and csets encode by value;
//   - lists, tables, sets and records encode structurally (one level of
//     reference semantics is necessarily lost: the receiving side gets a
//     fresh structure, exactly as a co-expression environment snapshot
//     copies locals);
//   - procedures, co-expressions, pipes and any other host-resident value
//     encode as typed opaque handles (Opaque) that carry the original type
//     name and image. Using such a handle where a procedure or
//     co-expression is required raises the ordinary Icon runtime error
//     (loud failure), because Opaque deliberately implements neither the
//     invocation nor the activation protocol.
//
// Every variable is dereferenced before encoding: the wire carries values,
// never references, matching @p's "out.take()" semantics which also
// dereferences.
//
// Wire format: a 1-byte type tag followed by a tag-specific payload.
// Variable-length quantities (string bytes, element counts, big-integer
// magnitudes) are length-prefixed with unsigned varints. Decoding enforces
// configurable limits (Limits) so a malicious or corrupt peer cannot force
// unbounded allocation; the fuzz tests pin that Unmarshal never panics.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/big"

	"junicon/internal/value"
)

// Type tags. The tag space is append-only: new tags may be added, existing
// tags must keep their number so mixed-version peers fail cleanly rather
// than misdecode.
const (
	tagNull   = 0x00
	tagInt    = 0x01 // zigzag varint int64
	tagBig    = 0x02 // sign byte, varint len, magnitude bytes (big-endian)
	tagReal   = 0x03 // 8-byte IEEE 754 bits, big-endian
	tagString = 0x04 // varint len, bytes
	tagCset   = 0x05 // varint len, member bytes (sorted UTF-8)
	tagList   = 0x06 // varint count, elements
	tagTable  = 0x07 // default value, varint count, key/value pairs
	tagSet    = 0x08 // varint count, members
	tagRecord = 0x09 // name, varint arity, field names, field values
	tagOpaque = 0x0a // kind string, description string
)

// Limits bounds decoding so frame lengths from the network cannot force
// unbounded allocation.
type Limits struct {
	// MaxBytes bounds any single length-prefixed byte payload (strings,
	// big-integer magnitudes, cset member strings).
	MaxBytes int
	// MaxElems bounds any single element count (list length, table size,
	// set size, record arity).
	MaxElems int
	// MaxDepth bounds structural nesting; it also terminates decoding of
	// adversarial deeply-nested inputs and encoding of cyclic structures.
	MaxDepth int
}

// DefaultLimits are generous enough for any benchmark workload while
// keeping a single value under ~16MiB of decoded payload per string.
var DefaultLimits = Limits{
	MaxBytes: 16 << 20,
	MaxElems: 1 << 20,
	MaxDepth: 64,
}

// ErrTooDeep is returned when encoding or decoding exceeds Limits.MaxDepth —
// on the encode side this is how cyclic structures (a list containing
// itself) surface as errors instead of hangs.
var ErrTooDeep = errors.New("wire: structure nesting exceeds depth limit")

// ErrTooLarge is returned when a decoded length prefix exceeds the limits.
var ErrTooLarge = errors.New("wire: length prefix exceeds limit")

// ErrOpaque is returned by MarshalStrict when a value would have to encode
// as an opaque handle: host-resident state (a procedure, co-expression,
// pipe) that a structural copy cannot carry. Checkpoint encoding uses the
// strict mode — a snapshot holding a dead handle would not resume, it
// would merely fail later, so the refusal must happen at snapshot time.
var ErrOpaque = errors.New("wire: value is host-resident and cannot encode strictly")

// Opaque is the decoded form of a value that cannot cross address spaces:
// procedures, co-expressions, pipes, reified variables' underlying hosts.
// It is a first-class value (it can be stored, compared by identity,
// printed) but any attempt to invoke or activate it raises the same Icon
// runtime error an integer would — remote use fails loudly, as required.
type Opaque struct {
	// Kind is the Icon type name of the original value ("procedure",
	// "co-expression", …).
	Kind string
	// Desc is the image of the original value on the encoding side, kept
	// for diagnostics.
	Desc string
}

// Type returns the opaque handle's own type name. It deliberately does NOT
// return Kind: an opaque procedure must not masquerade as an invocable
// procedure in type tests; it is a dead handle and says so.
func (o *Opaque) Type() string { return "remote-handle" }

// Image identifies the handle and its origin.
func (o *Opaque) Image() string { return fmt.Sprintf("remote-handle(%s %s)", o.Kind, o.Desc) }

// Marshal encodes v (dereferenced) under DefaultLimits.
func Marshal(v value.V) ([]byte, error) { return MarshalLimits(v, DefaultLimits) }

// MarshalLimits encodes v under explicit limits.
func MarshalLimits(v value.V, lim Limits) ([]byte, error) {
	var b bytes.Buffer
	if err := encode(&b, v, lim, 0, false); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// MarshalStrict encodes v under explicit limits, refusing (ErrOpaque) any
// value that would degrade to an opaque handle instead of silently
// encoding a dead proxy. Pre-existing *Opaque values — handles that
// already crossed a boundary once — still re-encode, keeping multi-hop
// honesty; only the lossy host-value-to-handle step is refused.
func MarshalStrict(v value.V, lim Limits) ([]byte, error) {
	var b bytes.Buffer
	if err := encode(&b, v, lim, 0, true); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// Unmarshal decodes one value under DefaultLimits, requiring the buffer to
// be fully consumed.
func Unmarshal(data []byte) (value.V, error) { return UnmarshalLimits(data, DefaultLimits) }

// UnmarshalLimits decodes one value under explicit limits.
func UnmarshalLimits(data []byte, lim Limits) (value.V, error) {
	r := &reader{buf: data, lim: lim}
	v, err := r.value(0)
	if err != nil {
		return nil, err
	}
	if r.pos != len(r.buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes after value", len(r.buf)-r.pos)
	}
	return v, nil
}

// ---- encoding ----

func putUvarint(b *bytes.Buffer, u uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], u)
	b.Write(tmp[:n])
}

func putVarint(b *bytes.Buffer, i int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], i)
	b.Write(tmp[:n])
}

func putString(b *bytes.Buffer, s string) {
	putUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

func encode(b *bytes.Buffer, v value.V, lim Limits, depth int, strict bool) error {
	if depth > lim.MaxDepth {
		return ErrTooDeep
	}
	switch x := value.Deref(v).(type) {
	case nil, value.Null:
		b.WriteByte(tagNull)
	case value.Integer:
		if i, ok := x.Int64(); ok {
			b.WriteByte(tagInt)
			putVarint(b, i)
		} else {
			big := x.Big()
			b.WriteByte(tagBig)
			if big.Sign() < 0 {
				b.WriteByte(1)
			} else {
				b.WriteByte(0)
			}
			mag := big.Bytes()
			putUvarint(b, uint64(len(mag)))
			b.Write(mag)
		}
	case value.Real:
		b.WriteByte(tagReal)
		var bits [8]byte
		binary.BigEndian.PutUint64(bits[:], math.Float64bits(float64(x)))
		b.Write(bits[:])
	case value.String:
		b.WriteByte(tagString)
		putString(b, string(x))
	case *value.Cset:
		b.WriteByte(tagCset)
		putString(b, x.Members())
	case *value.List:
		b.WriteByte(tagList)
		putUvarint(b, uint64(x.Len()))
		for i := 1; i <= x.Len(); i++ {
			e, _ := x.At(i)
			if err := encode(b, e, lim, depth+1, strict); err != nil {
				return err
			}
		}
	case *value.Table:
		b.WriteByte(tagTable)
		if err := encode(b, x.Default(), lim, depth+1, strict); err != nil {
			return err
		}
		keys := x.Keys()
		putUvarint(b, uint64(len(keys)))
		for _, k := range keys {
			if err := encode(b, k, lim, depth+1, strict); err != nil {
				return err
			}
			if err := encode(b, x.Get(k), lim, depth+1, strict); err != nil {
				return err
			}
		}
	case *value.Set:
		b.WriteByte(tagSet)
		members := x.Members()
		putUvarint(b, uint64(len(members)))
		for _, m := range members {
			if err := encode(b, m, lim, depth+1, strict); err != nil {
				return err
			}
		}
	case *value.Record:
		b.WriteByte(tagRecord)
		putString(b, x.Name)
		putUvarint(b, uint64(len(x.Fields)))
		for _, f := range x.Fields {
			putString(b, f)
		}
		for _, fv := range x.Values {
			if err := encode(b, fv, lim, depth+1, strict); err != nil {
				return err
			}
		}
	case *Opaque:
		// Re-encoding a handle keeps its original kind, so a value that
		// bounces through several hops stays honest about its origin.
		b.WriteByte(tagOpaque)
		putString(b, x.Kind)
		putString(b, x.Desc)
	default:
		// Procedures, natives, co-expressions, pipes, anything host-bound:
		// a typed opaque handle — or, in strict mode, a refusal.
		if strict {
			return fmt.Errorf("%w: %s %s", ErrOpaque, x.Type(), x.Image())
		}
		b.WriteByte(tagOpaque)
		putString(b, x.Type())
		putString(b, x.Image())
	}
	return nil
}

// ---- decoding ----

type reader struct {
	buf []byte
	pos int
	lim Limits
}

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, errors.New("wire: truncated value")
	}
	c := r.buf[r.pos]
	r.pos++
	return c, nil
}

func (r *reader) uvarint() (uint64, error) {
	u, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errors.New("wire: bad uvarint")
	}
	r.pos += n
	return u, nil
}

func (r *reader) varint() (int64, error) {
	i, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errors.New("wire: bad varint")
	}
	r.pos += n
	return i, nil
}

// bytesN reads a length-prefixed byte payload, enforcing MaxBytes and
// remaining-buffer bounds before allocating.
func (r *reader) bytesN() ([]byte, error) {
	u, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if u > uint64(r.lim.MaxBytes) {
		return nil, ErrTooLarge
	}
	n := int(u)
	if n > len(r.buf)-r.pos {
		return nil, errors.New("wire: truncated byte payload")
	}
	out := r.buf[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *reader) string() (string, error) {
	b, err := r.bytesN()
	return string(b), err
}

// count reads an element count, bounding it both by MaxElems and by the
// bytes actually remaining (each element takes at least one tag byte), so
// a forged huge count cannot pre-allocate unbounded memory.
func (r *reader) count() (int, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if u > uint64(r.lim.MaxElems) || u > uint64(len(r.buf)-r.pos) {
		return 0, ErrTooLarge
	}
	return int(u), nil
}

func (r *reader) value(depth int) (value.V, error) {
	if depth > r.lim.MaxDepth {
		return nil, ErrTooDeep
	}
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNull:
		return value.NullV, nil
	case tagInt:
		i, err := r.varint()
		if err != nil {
			return nil, err
		}
		return value.NewInt(i), nil
	case tagBig:
		sign, err := r.byte()
		if err != nil {
			return nil, err
		}
		mag, err := r.bytesN()
		if err != nil {
			return nil, err
		}
		n := new(big.Int).SetBytes(mag)
		if sign == 1 {
			n.Neg(n)
		} else if sign != 0 {
			return nil, fmt.Errorf("wire: bad big-integer sign byte %#x", sign)
		}
		return value.NewBig(n), nil
	case tagReal:
		if len(r.buf)-r.pos < 8 {
			return nil, errors.New("wire: truncated real")
		}
		bits := binary.BigEndian.Uint64(r.buf[r.pos:])
		r.pos += 8
		return value.Real(math.Float64frombits(bits)), nil
	case tagString:
		s, err := r.string()
		if err != nil {
			return nil, err
		}
		return value.String(s), nil
	case tagCset:
		s, err := r.string()
		if err != nil {
			return nil, err
		}
		return value.NewCset(s), nil
	case tagList:
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		l := value.NewList()
		for i := 0; i < n; i++ {
			e, err := r.value(depth + 1)
			if err != nil {
				return nil, err
			}
			l.Put(e)
		}
		return l, nil
	case tagTable:
		def, err := r.value(depth + 1)
		if err != nil {
			return nil, err
		}
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		t := value.NewTable(def)
		for i := 0; i < n; i++ {
			k, err := r.value(depth + 1)
			if err != nil {
				return nil, err
			}
			v, err := r.value(depth + 1)
			if err != nil {
				return nil, err
			}
			t.Set(k, v)
		}
		return t, nil
	case tagSet:
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		s := value.NewSet()
		for i := 0; i < n; i++ {
			m, err := r.value(depth + 1)
			if err != nil {
				return nil, err
			}
			s.Insert(m)
		}
		return s, nil
	case tagRecord:
		name, err := r.string()
		if err != nil {
			return nil, err
		}
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		fields := make([]string, n)
		for i := range fields {
			if fields[i], err = r.string(); err != nil {
				return nil, err
			}
		}
		values := make([]value.V, n)
		for i := range values {
			if values[i], err = r.value(depth + 1); err != nil {
				return nil, err
			}
		}
		return value.NewRecord(name, fields, values), nil
	case tagOpaque:
		kind, err := r.string()
		if err != nil {
			return nil, err
		}
		desc, err := r.string()
		if err != nil {
			return nil, err
		}
		return &Opaque{Kind: kind, Desc: desc}, nil
	default:
		return nil, fmt.Errorf("wire: unknown type tag %#x", tag)
	}
}
