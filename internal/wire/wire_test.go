package wire

import (
	"math"
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"junicon/internal/core"
	"junicon/internal/value"
)

// deepEqual is structural equivalence for decoded values: scalars by value,
// structures recursively (wire transport copies structures, so identity
// equivalence — value.Equiv — is the wrong notion here).
func deepEqual(a, b value.V) bool {
	a, b = value.Deref(a), value.Deref(b)
	switch x := a.(type) {
	case nil, value.Null:
		return value.IsNull(b)
	case value.Integer, value.Real, value.String, *value.Cset:
		return value.TypeOf(a) == value.TypeOf(b) && a.Image() == b.Image()
	case *value.List:
		y, ok := b.(*value.List)
		if !ok || x.Len() != y.Len() {
			return false
		}
		for i := 1; i <= x.Len(); i++ {
			xe, _ := x.At(i)
			ye, _ := y.At(i)
			if !deepEqual(xe, ye) {
				return false
			}
		}
		return true
	case *value.Table:
		y, ok := b.(*value.Table)
		if !ok || x.Len() != y.Len() || !deepEqual(x.Default(), y.Default()) {
			return false
		}
		xk, yk := x.Keys(), y.Keys()
		for i := range xk {
			if !deepEqual(xk[i], yk[i]) || !deepEqual(x.Get(xk[i]), y.Get(yk[i])) {
				return false
			}
		}
		return true
	case *value.Set:
		y, ok := b.(*value.Set)
		if !ok || x.Len() != y.Len() {
			return false
		}
		// Members() breaks cross-type numeric ties (1 vs 1.0) in map
		// order, so match members structurally rather than pairwise.
		xm, ym := x.Members(), y.Members()
		used := make([]bool, len(ym))
	outer:
		for i := range xm {
			for j := range ym {
				if !used[j] && deepEqual(xm[i], ym[j]) {
					used[j] = true
					continue outer
				}
			}
			return false
		}
		return true
	case *value.Record:
		y, ok := b.(*value.Record)
		if !ok || x.Name != y.Name || len(x.Fields) != len(y.Fields) {
			return false
		}
		for i := range x.Fields {
			if x.Fields[i] != y.Fields[i] || !deepEqual(x.Values[i], y.Values[i]) {
				return false
			}
		}
		return true
	case *Opaque:
		y, ok := b.(*Opaque)
		return ok && x.Kind == y.Kind && x.Desc == y.Desc
	default:
		return false
	}
}

func roundTrip(t *testing.T, v value.V) value.V {
	t.Helper()
	data, err := Marshal(v)
	if err != nil {
		t.Fatalf("Marshal(%s): %v", value.Image(v), err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal(%s): %v", value.Image(v), err)
	}
	return got
}

func TestRoundTripScalars(t *testing.T) {
	huge, _ := new(big.Int).SetString("123456789012345678901234567890", 10)
	cases := []value.V{
		value.NullV,
		value.NewInt(0),
		value.NewInt(42),
		value.NewInt(-7),
		value.NewInt(math.MaxInt64),
		value.NewInt(math.MinInt64),
		value.NewBig(huge),
		value.NewBig(new(big.Int).Neg(huge)),
		value.Real(0),
		value.Real(3.14159),
		value.Real(-2.5e300),
		value.Real(math.Inf(1)),
		value.Real(math.Inf(-1)),
		value.String(""),
		value.String("hello world"),
		value.String("líne\nwïth\tescapes\"and\\slashes"),
		value.NewCset("abc"),
		value.NewCset(""),
		value.CsetLetters,
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !deepEqual(v, got) {
			t.Errorf("round trip %s => %s", value.Image(v), value.Image(got))
		}
	}
}

func TestRoundTripNaN(t *testing.T) {
	got := roundTrip(t, value.Real(math.NaN()))
	r, ok := got.(value.Real)
	if !ok || !math.IsNaN(float64(r)) {
		t.Fatalf("NaN round trip => %s", value.Image(got))
	}
}

func TestRoundTripStructures(t *testing.T) {
	tbl := value.NewTable(value.NewInt(0))
	tbl.Set(value.String("alpha"), value.NewInt(1))
	tbl.Set(value.NewInt(2), value.NewList(value.String("nested")))
	rec := value.NewRecord("point", []string{"x", "y"}, []value.V{value.NewInt(3), value.Real(4.5)})
	cases := []value.V{
		value.NewList(),
		value.NewList(value.NewInt(1), value.String("two"), value.NullV),
		value.NewList(value.NewList(value.NewList(value.NewInt(9)))),
		tbl,
		value.NewSet(value.NewInt(1), value.String("one"), value.Real(1)),
		rec,
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !deepEqual(v, got) {
			t.Errorf("round trip %s => %s", value.Image(v), value.Image(got))
		}
	}
}

func TestStructureCopySemantics(t *testing.T) {
	l := value.NewList(value.NewInt(1))
	got := roundTrip(t, l).(*value.List)
	got.Put(value.NewInt(2))
	if l.Len() != 1 {
		t.Fatal("decoded list aliases the original")
	}
}

func TestVariablesAreDereferenced(t *testing.T) {
	cell := value.NewCell(value.NewInt(11))
	got := roundTrip(t, cell)
	if !deepEqual(got, value.NewInt(11)) {
		t.Fatalf("var encoded as %s, want 11", value.Image(got))
	}
}

func TestProceduresEncodeAsOpaqueHandles(t *testing.T) {
	p := value.NewProc("fib", 1, nil)
	got := roundTrip(t, p)
	o, ok := got.(*Opaque)
	if !ok {
		t.Fatalf("procedure decoded as %T", got)
	}
	if o.Kind != "procedure" || !strings.Contains(o.Desc, "fib") {
		t.Fatalf("opaque handle = %+v", o)
	}
	// Handles survive a second hop unchanged.
	again := roundTrip(t, o)
	if !deepEqual(o, again) {
		t.Fatalf("handle re-encode changed: %s => %s", o.Image(), value.Image(again))
	}
	// Loud failure on remote use: a handle implements neither activation
	// nor invocation, so core.Step / core.InvokeVal raise the ordinary
	// Icon runtime errors when a remote peer tries to use one.
	if _, isStepper := got.(interface {
		Step(value.V) (value.V, bool)
	}); isStepper {
		t.Fatal("opaque handle must not implement activation")
	}
	err := core.Protect(func() { core.Step(o, value.NullV) })
	if err == nil {
		t.Fatal("activating a remote handle did not raise a runtime error")
	}
}

func TestCyclicStructureErrors(t *testing.T) {
	l := value.NewList()
	l.Put(l)
	if _, err := Marshal(l); err == nil {
		t.Fatal("cyclic list marshalled without error")
	}
}

func TestDecodeLimits(t *testing.T) {
	// A forged list count far beyond the payload must error, not allocate.
	data := []byte{tagList, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := Unmarshal(data); err == nil {
		t.Fatal("forged count decoded without error")
	}
	// A string length beyond MaxBytes must error.
	big := append([]byte{tagString}, 0x81, 0x80, 0x80, 0x80, 0x10)
	if _, err := Unmarshal(big); err == nil {
		t.Fatal("oversized string length decoded without error")
	}
	// Trailing garbage after a complete value must error.
	ok, _ := Marshal(value.NewInt(1))
	if _, err := Unmarshal(append(ok, 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// randomValue builds an arbitrary transportable value of bounded depth.
func randomValue(rng *rand.Rand, depth int) value.V {
	max := 9
	if depth <= 0 {
		max = 5 // scalars only
	}
	switch rng.Intn(max) {
	case 0:
		return value.NullV
	case 1:
		return value.NewInt(rng.Int63() - rng.Int63())
	case 2:
		mag := make([]byte, 12+rng.Intn(8))
		rng.Read(mag)
		return value.NewBig(new(big.Int).SetBytes(mag))
	case 3:
		return value.Real(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(200)-100)))
	case 4:
		b := make([]byte, rng.Intn(12))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		if rng.Intn(2) == 0 {
			return value.String(b)
		}
		return value.NewCset(string(b))
	case 5:
		l := value.NewList()
		for i := rng.Intn(4); i > 0; i-- {
			l.Put(randomValue(rng, depth-1))
		}
		return l
	case 6:
		t := value.NewTable(randomValue(rng, 0))
		for i := rng.Intn(4); i > 0; i-- {
			t.Set(randomValue(rng, 0), randomValue(rng, depth-1))
		}
		return t
	case 7:
		s := value.NewSet()
		for i := rng.Intn(4); i > 0; i-- {
			s.Insert(randomValue(rng, 0))
		}
		return s
	default:
		n := rng.Intn(3)
		fields := make([]string, n)
		vals := make([]value.V, n)
		for i := range fields {
			fields[i] = string(rune('a' + i))
			vals[i] = randomValue(rng, depth-1)
		}
		return value.NewRecord("r", fields, vals)
	}
}

func TestPropRoundTripRandomValues(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		v := randomValue(rng, 3)
		got := roundTrip(t, v)
		if !deepEqual(v, got) {
			t.Fatalf("iteration %d: %s => %s", i, value.Image(v), value.Image(got))
		}
	}
}
