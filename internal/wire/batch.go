package wire

import (
	"encoding/binary"
	"fmt"

	"junicon/internal/value"
)

// Batch framing: the remote protocol's VALUES frame carries a run of
// wire-encoded values in one payload, amortizing the per-frame header and
// syscall the same way a batched pipe amortizes the per-value queue
// handshake. The layout is a uvarint element count followed by each
// element as a uvarint length prefix and its Marshal bytes. Decoding
// enforces the same Limits discipline as single-value decoding: the count
// is bounded by MaxElems and each element by MaxBytes, both checked
// against the remaining payload before any allocation, so a forged count
// or length cannot force unbounded work.

// EncodeBatch frames already-marshaled values into one batch payload.
func EncodeBatch(items [][]byte) []byte {
	size := binary.MaxVarintLen64
	for _, it := range items {
		size += binary.MaxVarintLen64 + len(it)
	}
	b := make([]byte, 0, size)
	b = binary.AppendUvarint(b, uint64(len(items)))
	for _, it := range items {
		b = binary.AppendUvarint(b, uint64(len(it)))
		b = append(b, it...)
	}
	return b
}

// DecodeBatch splits a batch payload into its still-encoded elements. The
// returned slices alias data; they are not copied. The whole payload must
// be consumed.
func DecodeBatch(data []byte, lim Limits) ([][]byte, error) {
	pos := 0
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("wire: bad batch count")
	}
	pos += n
	if count > uint64(lim.MaxElems) {
		return nil, ErrTooLarge
	}
	if count > uint64(len(data)-pos) {
		// Each element costs at least one length byte; a count beyond the
		// remaining payload is forged.
		return nil, fmt.Errorf("wire: batch count %d exceeds payload", count)
	}
	items := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		sz, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("wire: bad length for batch element %d", i)
		}
		pos += n
		if sz > uint64(lim.MaxBytes) {
			return nil, ErrTooLarge
		}
		if sz > uint64(len(data)-pos) {
			return nil, fmt.Errorf("wire: truncated batch element %d", i)
		}
		items = append(items, data[pos:pos+int(sz)])
		pos += int(sz)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("wire: %d trailing bytes after batch", len(data)-pos)
	}
	return items, nil
}

// MarshalBatch encodes vs into one batch payload under DefaultLimits.
func MarshalBatch(vs []value.V) ([]byte, error) {
	items := make([][]byte, len(vs))
	for i, v := range vs {
		data, err := Marshal(v)
		if err != nil {
			return nil, err
		}
		items[i] = data
	}
	return EncodeBatch(items), nil
}

// UnmarshalBatch decodes a batch payload into values under lim.
func UnmarshalBatch(data []byte, lim Limits) ([]value.V, error) {
	items, err := DecodeBatch(data, lim)
	if err != nil {
		return nil, err
	}
	vs := make([]value.V, len(items))
	for i, it := range items {
		v, err := UnmarshalLimits(it, lim)
		if err != nil {
			return nil, fmt.Errorf("wire: batch element %d: %w", i, err)
		}
		vs[i] = v
	}
	return vs, nil
}
