package wire

import (
	"encoding/binary"
	"fmt"

	"junicon/internal/value"
)

// Batch framing: the remote protocol's VALUES frame carries a run of
// wire-encoded values in one payload, amortizing the per-frame header and
// syscall the same way a batched pipe amortizes the per-value queue
// handshake. The layout is a uvarint element count followed by each
// element as a uvarint length prefix and its Marshal bytes. Decoding
// enforces the same Limits discipline as single-value decoding: the count
// is bounded by MaxElems and each element by MaxBytes, both checked
// against the remaining payload before any allocation, so a forged count
// or length cannot force unbounded work.

// EncodeBatch frames already-marshaled values into one batch payload.
func EncodeBatch(items [][]byte) []byte {
	return AppendBatch(nil, items)
}

// AppendBatch appends the batch framing of items to dst and returns the
// extended buffer — the scratch-reuse form of EncodeBatch, so a server
// flushing thousands of runs can recycle one buffer instead of allocating
// per flush.
func AppendBatch(dst []byte, items [][]byte) []byte {
	size := binary.MaxVarintLen64
	for _, it := range items {
		size += binary.MaxVarintLen64 + len(it)
	}
	if cap(dst)-len(dst) < size {
		grown := make([]byte, len(dst), len(dst)+size)
		copy(grown, dst)
		dst = grown
	}
	dst = binary.AppendUvarint(dst, uint64(len(items)))
	for _, it := range items {
		dst = binary.AppendUvarint(dst, uint64(len(it)))
		dst = append(dst, it...)
	}
	return dst
}

// DecodeBatch splits a batch payload into its still-encoded elements. The
// returned slices alias data; they are not copied. The whole payload must
// be consumed.
func DecodeBatch(data []byte, lim Limits) ([][]byte, error) {
	pos := 0
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("wire: bad batch count")
	}
	pos += n
	if count > uint64(lim.MaxElems) {
		return nil, ErrTooLarge
	}
	if count > uint64(len(data)-pos) {
		// Each element costs at least one length byte; a count beyond the
		// remaining payload is forged.
		return nil, fmt.Errorf("wire: batch count %d exceeds payload", count)
	}
	items := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		sz, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("wire: bad length for batch element %d", i)
		}
		pos += n
		if sz > uint64(lim.MaxBytes) {
			return nil, ErrTooLarge
		}
		if sz > uint64(len(data)-pos) {
			return nil, fmt.Errorf("wire: truncated batch element %d", i)
		}
		items = append(items, data[pos:pos+int(sz)])
		pos += int(sz)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("wire: %d trailing bytes after batch", len(data)-pos)
	}
	return items, nil
}

// MarshalBatch encodes vs into one batch payload under DefaultLimits.
func MarshalBatch(vs []value.V) ([]byte, error) {
	items := make([][]byte, len(vs))
	for i, v := range vs {
		data, err := Marshal(v)
		if err != nil {
			return nil, err
		}
		items[i] = data
	}
	return EncodeBatch(items), nil
}

// UnmarshalBatch decodes a batch payload into values under lim.
func UnmarshalBatch(data []byte, lim Limits) ([]value.V, error) {
	vs, err := UnmarshalBatchInto(nil, data, lim)
	if err != nil {
		return nil, err
	}
	return vs, nil
}

// UnmarshalBatchInto decodes a batch payload, appending the values to dst
// — the scratch-reuse form of UnmarshalBatch for long-lived read loops.
// The decoded values never alias data (the codec copies everything it
// keeps), so the caller may recycle both dst and data freely.
func UnmarshalBatchInto(dst []value.V, data []byte, lim Limits) ([]value.V, error) {
	pos := 0
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return dst, fmt.Errorf("wire: bad batch count")
	}
	pos += n
	if count > uint64(lim.MaxElems) {
		return dst, ErrTooLarge
	}
	if count > uint64(len(data)-pos) {
		return dst, fmt.Errorf("wire: batch count %d exceeds payload", count)
	}
	for i := uint64(0); i < count; i++ {
		sz, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return dst, fmt.Errorf("wire: bad length for batch element %d", i)
		}
		pos += n
		if sz > uint64(lim.MaxBytes) {
			return dst, ErrTooLarge
		}
		if sz > uint64(len(data)-pos) {
			return dst, fmt.Errorf("wire: truncated batch element %d", i)
		}
		v, err := UnmarshalLimits(data[pos:pos+int(sz)], lim)
		if err != nil {
			return dst, fmt.Errorf("wire: batch element %d: %w", i, err)
		}
		dst = append(dst, v)
		pos += int(sz)
	}
	if pos != len(data) {
		return dst, fmt.Errorf("wire: %d trailing bytes after batch", len(data)-pos)
	}
	return dst, nil
}
