package wire

import (
	"encoding/binary"
	"testing"

	"junicon/internal/value"
)

func TestBatchRoundTrip(t *testing.T) {
	cases := [][]value.V{
		{},
		{value.NewInt(1)},
		{value.NewInt(1), value.String("two"), value.NullV, value.Real(4.5)},
	}
	long := make([]value.V, 512)
	for i := range long {
		long[i] = value.NewInt(int64(i))
	}
	cases = append(cases, long)
	for _, vs := range cases {
		data, err := MarshalBatch(vs)
		if err != nil {
			t.Fatalf("MarshalBatch(%d values): %v", len(vs), err)
		}
		got, err := UnmarshalBatch(data, DefaultLimits)
		if err != nil {
			t.Fatalf("UnmarshalBatch(%d values): %v", len(vs), err)
		}
		if len(got) != len(vs) {
			t.Fatalf("batch of %d decoded as %d", len(vs), len(got))
		}
		for i := range vs {
			if !deepEqual(vs[i], got[i]) {
				t.Fatalf("element %d: %s => %s", i, value.Image(vs[i]), value.Image(got[i]))
			}
		}
	}
}

func TestDecodeBatchRejectsForgeries(t *testing.T) {
	one, _ := Marshal(value.NewInt(7))
	good := EncodeBatch([][]byte{one, one})
	cases := []struct {
		name string
		data []byte
	}{
		{"empty payload", nil},
		{"truncated count", []byte{0x80}},
		{"count beyond payload", []byte{0x05, 0x01}},
		{"count beyond MaxElems", binary.AppendUvarint(nil, 1<<30)},
		{"truncated element", good[:len(good)-1]},
		{"element length beyond payload", append(binary.AppendUvarint(nil, 1), 0x7f, 0x01)},
		{"element length beyond MaxBytes",
			append(binary.AppendUvarint(nil, 1), binary.AppendUvarint(nil, 1<<62)...)},
		{"trailing bytes", append(append([]byte{}, good...), 0x00)},
	}
	lim := Limits{MaxBytes: 1 << 16, MaxElems: 1 << 10, MaxDepth: 16}
	for _, c := range cases {
		if _, err := DecodeBatch(c.data, lim); err == nil {
			t.Errorf("%s: decoded without error", c.name)
		}
	}
	// A zero-count batch is legal (an empty flush would encode this way):
	// it decodes to no elements, not an error.
	vs, err := UnmarshalBatch(binary.AppendUvarint(nil, 0), lim)
	if err != nil || len(vs) != 0 {
		t.Errorf("zero-count batch: %v, %d elements", err, len(vs))
	}
}

// FuzzDecodeBatch pins that no batch payload makes the decoder panic or
// allocate unboundedly — the VALUES frame faces the same hostile peers as
// single-value frames — and that every successfully decoded batch survives
// a re-encode round trip element for element.
func FuzzDecodeBatch(f *testing.F) {
	mk := func(vs ...value.V) []byte {
		data, err := MarshalBatch(vs)
		if err != nil {
			f.Fatalf("seed marshal: %v", err)
		}
		return data
	}
	f.Add(mk())
	f.Add(mk(value.NewInt(1)))
	f.Add(mk(value.NewInt(1), value.String("two"), value.NullV))
	f.Add(mk(value.NewList(value.NewInt(1)), value.NewSet(value.NewInt(2))))
	// Forged shapes: truncated batch, zero count with trailing bytes, a
	// count far beyond the payload, an oversized element length mid-batch.
	good := mk(value.NewInt(1), value.NewInt(2), value.NewInt(3))
	f.Add(good[:len(good)-2])
	f.Add([]byte{0x00, 0xff})
	f.Add(binary.AppendUvarint(nil, 1<<40))
	bad := binary.AppendUvarint(nil, 2)
	one, _ := Marshal(value.NewInt(9))
	bad = binary.AppendUvarint(bad, uint64(len(one)))
	bad = append(bad, one...)
	bad = binary.AppendUvarint(bad, 1<<50)
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		lim := Limits{MaxBytes: 1 << 16, MaxElems: 1 << 12, MaxDepth: 32}
		vs, err := UnmarshalBatch(data, lim)
		if err != nil {
			return
		}
		re, err := MarshalBatch(vs)
		if err != nil {
			t.Fatalf("re-marshal of decoded batch failed: %v", err)
		}
		vs2, err := UnmarshalBatch(re, lim)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if len(vs2) != len(vs) {
			t.Fatalf("round trip changed count: %d vs %d", len(vs), len(vs2))
		}
		for i := range vs {
			if !deepEqual(vs[i], vs2[i]) {
				t.Fatalf("element %d not stable: %s vs %s",
					i, value.Image(vs[i]), value.Image(vs2[i]))
			}
		}
	})
}
