package wire

import (
	"testing"

	"junicon/internal/value"
)

// FuzzUnmarshal pins that no byte sequence makes the decoder panic or
// allocate unboundedly, and that every successfully decoded value survives
// a re-encode round trip — the invariant the remote protocol's frame
// handling relies on when facing a corrupt or hostile peer.
func FuzzUnmarshal(f *testing.F) {
	seed := []value.V{
		value.NullV,
		value.NewInt(-123456),
		value.Real(2.718),
		value.String("seed string"),
		value.NewCset("abc"),
		value.NewList(value.NewInt(1), value.String("x"), value.NewList()),
		value.NewSet(value.NewInt(1), value.NewInt(2)),
		value.NewRecord("p", []string{"x"}, []value.V{value.Real(1)}),
		&Opaque{Kind: "procedure", Desc: "procedure main"},
	}
	tbl := value.NewTable(value.NullV)
	tbl.Set(value.String("k"), value.NewInt(9))
	seed = append(seed, tbl)
	for _, v := range seed {
		data, err := Marshal(v)
		if err != nil {
			f.Fatalf("seed marshal: %v", err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{tagList, 0xff, 0xff, 0x7f})
	f.Add([]byte{tagBig, 0x02, 0x01, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Keep fuzz inputs small enough that decoding stays fast; the
		// limits themselves are exercised by the forged-length seeds.
		lim := Limits{MaxBytes: 1 << 16, MaxElems: 1 << 12, MaxDepth: 32}
		v, err := UnmarshalLimits(data, lim)
		if err != nil {
			return
		}
		re, err := MarshalLimits(v, lim)
		if err != nil {
			t.Fatalf("re-marshal of decoded value failed: %v", err)
		}
		v2, err := UnmarshalLimits(re, lim)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if !deepEqual(v, v2) {
			t.Fatalf("round trip not stable: %s vs %s", value.Image(v), value.Image(v2))
		}
	})
}
