package mapreduce

import (
	"testing"
	"testing/quick"

	"junicon/internal/core"
	"junicon/internal/value"
)

func intVal(v value.V) int64 {
	i, _ := value.ToInteger(v)
	n, _ := i.Int64()
	return n
}

// sourceProc returns a generator function producing 1..n.
func sourceProc(n int64) *value.Proc {
	return value.NewProc("src", 0, func(...value.V) core.Gen { return core.IntRange(1, n) })
}

var square = core.ValProc("square", 1, func(a []value.V) value.V {
	return value.Mul(a[0], a[0])
})

var sum2 = core.ValProc("sum", 2, func(a []value.V) value.V {
	return value.Add(a[0], a[1])
})

func TestChunkPartitionsExactly(t *testing.T) {
	chunks := core.Drain(ChunkGen(core.IntRange(1, 10), 4), 0)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	sizes := []int{4, 4, 2}
	total := int64(0)
	for i, c := range chunks {
		l := c.(*value.List)
		if l.Len() != sizes[i] {
			t.Fatalf("chunk %d size = %d, want %d", i, l.Len(), sizes[i])
		}
		for _, e := range l.Elems() {
			total += intVal(e)
		}
	}
	if total != 55 {
		t.Fatalf("element sum = %d", total)
	}
}

func TestChunkEvenPartition(t *testing.T) {
	chunks := core.Drain(ChunkGen(core.IntRange(1, 8), 4), 0)
	if len(chunks) != 2 {
		t.Fatalf("chunks = %d", len(chunks))
	}
}

func TestChunkEmptySource(t *testing.T) {
	if got := core.Drain(ChunkGen(core.Empty(), 4), 0); len(got) != 0 {
		t.Fatalf("chunks of empty = %v", got)
	}
}

func TestSpawnMapMapsChunkInPipe(t *testing.T) {
	chunk := value.NewList(value.NewInt(1), value.NewInt(2), value.NewInt(3))
	got := core.Drain(SpawnMap(square, chunk, 2), 0)
	want := []int64{1, 4, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if intVal(got[i]) != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestSpawnMapShadowsChunk(t *testing.T) {
	// Mutating the chunk after spawning must not affect the task (the
	// co-expression copied its environment).
	chunk := value.NewList(value.NewInt(1), value.NewInt(2))
	g := SpawnMap(square, chunk, 2)
	// NOTE: the environment shadowing copies the *reference* to the list
	// (Icon co-expressions copy variable bindings, not structures), so this
	// asserts the binding is captured — replacing our local binding has no
	// effect on the running task.
	chunk = value.NewList(value.NewInt(100))
	_ = chunk
	got := core.Drain(g, 0)
	if len(got) != 2 || intVal(got[0]) != 1 || intVal(got[1]) != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestMapReduceSumOfSquares(t *testing.T) {
	// sum of squares of 1..100 via per-chunk reduce then serial combine.
	dp := New(7)
	g := dp.MapReduce(square, sourceProc(100), sum2, value.NewInt(0))
	total := int64(0)
	nChunks := 0
	core.Each(g, func(v value.V) bool {
		total += intVal(v)
		nChunks++
		return true
	})
	if total != 338350 {
		t.Fatalf("sum of squares = %d, want 338350", total)
	}
	if want := (100 + 6) / 7; nChunks != want {
		t.Fatalf("per-chunk results = %d, want %d", nChunks, want)
	}
}

func TestMapReduceMatchesSequentialForManyShapes(t *testing.T) {
	f := func(n uint8, chunk uint8) bool {
		nn := int64(n%60) + 1
		cs := int(chunk%9) + 1
		dp := New(cs)
		g := dp.MapReduce(square, sourceProc(nn), sum2, value.NewInt(0))
		total := int64(0)
		core.Each(g, func(v value.V) bool { total += intVal(v); return true })
		want := int64(0)
		for i := int64(1); i <= nn; i++ {
			want += i * i
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMapFlatPreservesOrderAndSplitsReduction(t *testing.T) {
	dp := New(3)
	g := dp.MapFlat(square, sourceProc(10))
	got := core.Drain(g, 0)
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		want := int64(i+1) * int64(i+1)
		if intVal(v) != want {
			t.Fatalf("order broken at %d: %v", i, got)
		}
	}
}

func TestMapReduceEmptySource(t *testing.T) {
	dp := New(4)
	empty := value.NewProc("none", 0, func(...value.V) core.Gen { return core.Empty() })
	if got := core.Drain(dp.MapReduce(square, empty, sum2, value.NewInt(0)), 0); len(got) != 0 {
		t.Fatalf("results of empty source = %v", got)
	}
}

func TestMapReduceRestartable(t *testing.T) {
	dp := New(5)
	g := dp.MapReduce(square, sourceProc(10), sum2, value.NewInt(0))
	run := func() int64 {
		total := int64(0)
		core.Each(g, func(v value.V) bool { total += intVal(v); return true })
		return total
	}
	a, b := run(), run() // Defer rebuilds the whole task fleet per cycle
	if a != 385 || b != 385 {
		t.Fatalf("runs = %d, %d; want 385", a, b)
	}
}

func TestTasksRunConcurrently(t *testing.T) {
	// All chunk tasks are spawned before any result is taken; with more
	// chunks than results consumed, consuming just the first per-chunk
	// result must not deadlock even though later pipes already ran.
	dp := New(2)
	g := dp.MapReduce(square, sourceProc(20), sum2, value.NewInt(0))
	v, ok := g.Next()
	if !ok {
		t.Fatal("no first result")
	}
	if intVal(v) != 1+4 {
		t.Fatalf("first chunk reduce = %v", intVal(v))
	}
	core.Drain(g, 0)
}
