package mapreduce

import (
	"runtime"
	"testing"
	"time"

	"junicon/internal/core"
	"junicon/internal/pool"
	"junicon/internal/value"
)

// chanGen yields values from a channel: it blocks while the channel is
// empty and is exhausted when the channel closes — a source whose tail
// cannot be read until the test releases it.
type chanGen struct{ ch chan value.V }

func (g *chanGen) Next() (value.V, bool) { v, ok := <-g.ch; return v, ok }
func (g *chanGen) Restart()              {}

var identity = core.ValProc("id", 1, func(a []value.V) value.V { return a[0] })

// TestMapFlatStreamsBeforeSourceExhausted is the regression test for the
// drain-the-source-first bug: with a window of 2 single-element chunks,
// the first mapped result must arrive while the rest of the source is
// still blocked in the producer. The pre-window scheduler pulled every
// chunk before spawning anything, which deadlocks here.
func TestMapFlatStreamsBeforeSourceExhausted(t *testing.T) {
	ch := make(chan value.V, 2)
	ch <- value.IntV(1)
	ch <- value.IntV(2)
	src := value.NewProc("src", 0, func(...value.V) core.Gen { return &chanGen{ch: ch} })
	cfg := Config{ChunkSize: 1, Buffer: 2, Workers: 2, Window: 2}
	g := cfg.MapFlat(identity, src)

	got := make(chan int64, 1)
	go func() {
		v, ok := g.Next()
		if !ok {
			got <- -1
			return
		}
		got <- intVal(v)
	}()
	select {
	case v := <-got:
		if v != 1 {
			t.Fatalf("first result = %d, want 1", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no result arrived while the source tail was still blocked")
	}

	ch <- value.IntV(3)
	close(ch)
	rest := core.Drain(g, 0)
	want := []int64{2, 3}
	if len(rest) != len(want) {
		t.Fatalf("rest = %v", rest)
	}
	for i := range want {
		if intVal(rest[i]) != want[i] {
			t.Fatalf("rest[%d] = %d, want %d", i, intVal(rest[i]), want[i])
		}
	}
}

// TestMapReduceStreamsBeforeSourceExhausted is the same regression for the
// reducing form: the first per-chunk reduced result must stream out while
// the source is still blocked.
func TestMapReduceStreamsBeforeSourceExhausted(t *testing.T) {
	ch := make(chan value.V, 2)
	ch <- value.IntV(5)
	ch <- value.IntV(7)
	src := value.NewProc("src", 0, func(...value.V) core.Gen { return &chanGen{ch: ch} })
	cfg := Config{ChunkSize: 1, Buffer: 2, Workers: 2, Window: 2}
	g := cfg.MapReduce(identity, src, sum2, value.IntV(0))

	got := make(chan int64, 1)
	go func() {
		v, ok := g.Next()
		if !ok {
			got <- -1
			return
		}
		got <- intVal(v)
	}()
	select {
	case v := <-got:
		if v != 5 {
			t.Fatalf("first chunk result = %d, want 5", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no chunk result arrived while the source tail was still blocked")
	}

	close(ch)
	rest := core.Drain(g, 0)
	if len(rest) != 1 || intVal(rest[0]) != 7 {
		t.Fatalf("rest = %v, want [7]", rest)
	}
}

// TestWindowBoundsGoroutines drives a 10000-chunk source and samples the
// goroutine count throughout: the windowed scheduler must keep peak
// goroutines bounded by workers + window (plus harness slack), where the
// unwindowed scheduler spawned one goroutine per chunk up front.
func TestWindowBoundsGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	const workers, window = 4, 8
	cfg := Config{ChunkSize: 1, Workers: workers, Window: window}
	g := cfg.MapReduce(identity, sourceProc(10000), sum2, value.IntV(0))

	peak, n := 0, 0
	total := int64(0)
	core.Each(g, func(v value.V) bool {
		total += intVal(v)
		if n%50 == 0 {
			if cur := runtime.NumGoroutine(); cur > peak {
				peak = cur
			}
		}
		n++
		return true
	})
	if n != 10000 || total != 50005000 {
		t.Fatalf("drained %d chunks, total %d", n, total)
	}
	limit := base + workers + window + 8
	if peak > limit {
		t.Fatalf("peak goroutines %d > %d (base %d + workers %d + window %d + slack)",
			peak, limit, base, workers, window)
	}
}

// TestWindowGridEquivalence sweeps workers × window over both forms: every
// cell must produce the same ordered sequence (window and pool sizing are
// performance knobs, not semantics).
func TestWindowGridEquivalence(t *testing.T) {
	wantFlat := make([]int64, 20)
	for i := range wantFlat {
		wantFlat[i] = int64((i + 1) * (i + 1))
	}
	// ChunkSize 3 over 1..20: chunks [1..3], [4..6], ..., [19,20].
	var wantRed []int64
	for lo := int64(1); lo <= 20; lo += 3 {
		s := int64(0)
		for v := lo; v <= 20 && v < lo+3; v++ {
			s += v * v
		}
		wantRed = append(wantRed, s)
	}
	for _, workers := range []int{0, 1, 3} {
		for _, window := range []int{0, 1, 2, 16} {
			cfg := Config{ChunkSize: 3, Workers: workers, Window: window}
			flat := core.Drain(cfg.MapFlat(square, sourceProc(20)), 0)
			if len(flat) != len(wantFlat) {
				t.Fatalf("w=%d win=%d: flat = %v", workers, window, flat)
			}
			for i := range wantFlat {
				if intVal(flat[i]) != wantFlat[i] {
					t.Fatalf("w=%d win=%d: flat[%d] = %d, want %d",
						workers, window, i, intVal(flat[i]), wantFlat[i])
				}
			}
			red := core.Drain(cfg.MapReduce(square, sourceProc(20), sum2, value.IntV(0)), 0)
			if len(red) != len(wantRed) {
				t.Fatalf("w=%d win=%d: reduced = %v", workers, window, red)
			}
			for i := range wantRed {
				if intVal(red[i]) != wantRed[i] {
					t.Fatalf("w=%d win=%d: reduced[%d] = %d, want %d",
						workers, window, i, intVal(red[i]), wantRed[i])
				}
			}
		}
	}
}

// TestChunkGenAutoRestarts drives the same chunk generator through two
// full cycles, on and off an exact chunk boundary: the second cycle must
// reproduce the first (regression: the boundary case used to report one
// spurious empty cycle between drives).
func TestChunkGenAutoRestarts(t *testing.T) {
	for _, n := range []int64{8, 10} { // 8 = exact boundary at size 4
		g := ChunkGen(core.IntRange(1, n), 4)
		want := int((n + 3) / 4)
		for cycle := 0; cycle < 2; cycle++ {
			if got := core.Drain(g, 0); len(got) != want {
				t.Fatalf("n=%d cycle %d: %d chunks, want %d", n, cycle, len(got), want)
			}
		}
	}
}

// TestConfigPoolNotShutDown supplies an external pool: the scheduler must
// leave it running across cycles so the caller can keep using it.
func TestConfigPoolNotShutDown(t *testing.T) {
	pl := pool.New(2)
	defer pl.Shutdown()
	cfg := Config{ChunkSize: 4, Pool: pl}
	g := cfg.MapReduce(square, sourceProc(12), sum2, value.IntV(0))
	for round := 0; round < 2; round++ {
		if got := core.Drain(g, 0); len(got) != 3 {
			t.Fatalf("round %d: %v", round, got)
		}
	}
	if err := pl.Go(func() {}); err != nil {
		t.Fatalf("caller's pool was shut down: %v", err)
	}
}
