// Package mapreduce builds the higher-order map-reduce abstraction of
// Figure 4 from nothing but the calculus of concurrent generators: chunking
// a source co-expression, spawning a pipe per chunk, and promoting the task
// list back into a generator of per-chunk results.
//
// The Junicon original (Figure 4):
//
//	def chunk(e) {                      # Partition e into chunks
//	  chunk = [];
//	  while put(chunk, @e) do {
//	    if (*chunk >= chunkSize) then { suspend chunk; chunk = []; } };
//	  if (*chunk > 0) then { return chunk; };
//	}
//	def mapReduce(f, s, r, i) {         # Map f over s and reduce with r
//	  var c, t, tasks = [];
//	  every (c = chunk(<>s)) do {
//	    t = |> { var x = i; every (x = r(x, f(!c))); x };
//	    ((List) tasks)::add(t);
//	  };
//	  suspend ! (! tasks);
//	}
package mapreduce

import (
	"junicon/internal/coexpr"
	"junicon/internal/core"
	"junicon/internal/pipe"
	"junicon/internal/value"
)

// Chunk partitions the results of stepping co-expression e into lists of at
// most size elements — the chunk generator function of Figure 4.
func Chunk(e core.Stepper, size int) core.Gen {
	if size < 1 {
		size = 1
	}
	return core.NewGen(func(yield func(value.V) bool) {
		chunk := value.NewList()
		for {
			v, ok := e.Step(value.NullV) // put(chunk, @e)
			if !ok {
				break
			}
			chunk.Put(value.Deref(v))
			if chunk.Len() >= size {
				if !yield(chunk) {
					return
				}
				chunk = value.NewList()
			}
		}
		if chunk.Len() > 0 {
			yield(chunk)
		}
	})
}

// ChunkGen is Chunk over a plain generator: chunk(<>s).
func ChunkGen(src core.Gen, size int) core.Gen {
	return Chunk(core.NewFirstClass(src), size)
}

// SpawnMap spawns a data-parallel mapping of callable f over the elements
// of chunk, returning the generator of mapped results — the spawnMap method
// whose translation is Figure 5:
//
//	def spawnMap (f, chunk) { suspend ! (|> f(!chunk)); }
//
// The chunk is captured in the pipe's shadowed co-expression environment,
// so concurrent tasks cannot interfere.
func SpawnMap(f value.V, chunk value.V, buffer int) core.Gen {
	c := coexpr.New([]value.V{f, chunk}, func(env []*value.Var) core.Gen {
		// x_0 in !chunk_s & f_s(x_0): map f over the shadowed chunk.
		x0 := value.NewCell(value.NullV)
		return core.Product(
			core.In(x0, core.PromoteVal(env[1].Get())),
			core.Defer(func() core.Gen { return core.InvokeVal(env[0].Get(), x0.Get()) }),
		)
	})
	p := pipe.New(c, buffer)
	p.StartEager()
	return core.Bang(p)
}

// Config carries the knobs of the DataParallel class from Figure 3/4.
type Config struct {
	// ChunkSize is the partition size (the paper uses 1000).
	ChunkSize int
	// Buffer bounds each task pipe's output queue; <= 0 selects the pipe
	// default.
	Buffer int
}

// New mirrors `new DataParallel(1000)`.
func New(chunkSize int) Config { return Config{ChunkSize: chunkSize} }

// MapReduce maps callable f over the results of source generator s,
// reducing each chunk with callable r from initial value init in its own
// pipe, and returns the generator of per-chunk reduced results in chunk
// order — Figure 4's mapReduce. All task pipes run concurrently; the
// returned generator is `!(!tasks)`.
func (cfg Config) MapReduce(f, s, r value.V, init value.V) core.Gen {
	return core.Defer(func() core.Gen {
		tasks := value.NewList()
		// every (c = chunk(<>s)) do { t = |> {…}; put(tasks, t) }
		source := core.InvokeVal(s)
		core.Each(ChunkGen(source, cfg.ChunkSize), func(c value.V) bool {
			t := cfg.spawnReduce(f, r, init, c)
			tasks.Put(t)
			return true
		})
		// suspend !(!tasks): promote each task, then promote its results.
		return core.Promote(core.PromoteVal(tasks))
	})
}

// spawnReduce is the pipe body |> { var x = i; every (x = r(x, f(!c))); x }.
func (cfg Config) spawnReduce(f, r, init value.V, chunk value.V) *pipe.Pipe {
	c := coexpr.New([]value.V{f, r, init, chunk}, func(env []*value.Var) core.Gen {
		return core.NewGen(func(yield func(value.V) bool) {
			x := env[2].Get()
			elem := value.NewCell(value.NullV)
			mapped := core.Product(
				core.In(elem, core.PromoteVal(env[3].Get())),
				core.Defer(func() core.Gen { return core.InvokeVal(env[0].Get(), elem.Get()) }),
			)
			core.Each(mapped, func(m value.V) bool {
				red, ok := core.First(core.InvokeVal(env[1].Get(), x, m))
				if !ok {
					return false
				}
				x = red
				return true
			})
			yield(x)
		})
	})
	p := pipe.New(c, cfg.Buffer)
	p.StartEager()
	return p
}

// MapFlat is the data-parallel variant of §VII: chunks are mapped in
// concurrent pipes but NOT reduced per chunk; the mapped elements stream
// back flattened and in order for a serial downstream reduction. It
// "differ[s] in performing summation over the sequence returned from
// flattening the chunks, thus splitting out the reduction".
func (cfg Config) MapFlat(f, s value.V) core.Gen {
	return core.Defer(func() core.Gen {
		tasks := value.NewList()
		source := core.InvokeVal(s)
		core.Each(ChunkGen(source, cfg.ChunkSize), func(c value.V) bool {
			tasks.Put(core.NewFirstClass(SpawnMap(f, c, cfg.Buffer)))
			return true
		})
		return core.Promote(core.PromoteVal(tasks))
	})
}
