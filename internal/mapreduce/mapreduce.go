// Package mapreduce builds the higher-order map-reduce abstraction of
// Figure 4 from nothing but the calculus of concurrent generators: chunking
// a source co-expression, spawning a pipe per chunk, and promoting the task
// results back into a generator.
//
// The Junicon original (Figure 4):
//
//	def chunk(e) {                      # Partition e into chunks
//	  chunk = [];
//	  while put(chunk, @e) do {
//	    if (*chunk >= chunkSize) then { suspend chunk; chunk = []; } };
//	  if (*chunk > 0) then { return chunk; };
//	}
//	def mapReduce(f, s, r, i) {         # Map f over s and reduce with r
//	  var c, t, tasks = [];
//	  every (c = chunk(<>s)) do {
//	    t = |> { var x = i; every (x = r(x, f(!c))); x };
//	    ((List) tasks)::add(t);
//	  };
//	  suspend ! (! tasks);
//	}
//
// # Scheduling
//
// The figure's literal drive — materialize every chunk, spawn a goroutine
// pipe per chunk, then drain the task list — needs O(source) memory and
// O(chunks) goroutines before the first result appears. This package keeps
// the figure's per-chunk task pipes but drives them through a windowed
// streaming schedule (§5D's "thread pool management"): chunks are pulled
// from the source lazily, at most Window task pipes are in flight at a
// time, each producer runs on a reused worker of a pool.Pool, and results
// are delivered by draining tasks in spawn (chunk) order. First results
// stream while the source is still being read; memory is O(window·chunk);
// goroutines are O(workers).
//
// In-order draining is also what makes the shared pool deadlock-free: the
// eldest undrained task is always either running or queued behind tasks
// that can complete, so a producer blocked on a full output queue is
// always eventually consumed.
package mapreduce

import (
	"sync"

	"junicon/internal/coexpr"
	"junicon/internal/core"
	"junicon/internal/pipe"
	"junicon/internal/pool"
	"junicon/internal/value"
)

// sharedPool is the process-wide default worker pool for chunk tasks,
// created on first use and never shut down: data-parallel drives reuse its
// goroutines instead of spawning per chunk or per cycle.
var (
	sharedOnce sync.Once
	shared     *pool.Pool
)

func sharedPool() *pool.Pool {
	sharedOnce.Do(func() { shared = pool.New(0) })
	return shared
}

// chunkBufs recycles chunk backing slices: a chunk list dies as soon as its
// task pipe has drained it, so the backing array is returned to the pool
// when the task leaves the window.
var chunkBufs sync.Pool

// Chunk partitions the results of stepping co-expression e into lists of at
// most size elements — the chunk generator function of Figure 4.
func Chunk(e core.Stepper, size int) core.Gen {
	if size < 1 {
		size = 1
	}
	return &chunkGen{e: e, size: size}
}

// chunkGen is the struct form of Figure 4's chunk(e): no coroutine, and the
// backing slices come preallocated from the recycler.
type chunkGen struct {
	e    core.Stepper
	size int
	buf  []value.V
	done bool
}

func (g *chunkGen) take() []value.V {
	if b, ok := chunkBufs.Get().([]value.V); ok && cap(b) >= g.size {
		return b[:0]
	}
	return make([]value.V, 0, g.size)
}

func (g *chunkGen) Next() (value.V, bool) {
	if g.done {
		g.done = false // the partial tail was delivered; now report failure
		return nil, false
	}
	if g.buf == nil {
		g.buf = g.take()
	}
	for {
		v, ok := g.e.Step(value.NullV) // put(chunk, @e)
		if !ok {
			break
		}
		g.buf = append(g.buf, value.Deref(v))
		if len(g.buf) >= g.size {
			out := value.NewListOf(g.buf)
			g.buf = g.take()
			return out, true
		}
	}
	out := g.buf
	g.buf = nil
	if len(out) > 0 {
		g.done = true
		return value.NewListOf(out), true
	}
	// Exhausted on a chunk boundary: fail now, auto-restarted next call.
	if cap(out) > 0 {
		chunkBufs.Put(out[:0])
	}
	return nil, false
}

func (g *chunkGen) Restart() {
	g.buf = nil
	g.done = false
}

// ChunkGen is Chunk over a plain generator: chunk(<>s).
func ChunkGen(src core.Gen, size int) core.Gen {
	return Chunk(core.NewFirstClass(src), size)
}

// recycleChunk returns a drained chunk's backing slice to the recycler. The
// elements have been delivered by value (chunkElems), so nothing retains
// the array.
func recycleChunk(c value.V) {
	if l, ok := c.(*value.List); ok {
		if buf := l.Elems(); cap(buf) > 0 {
			for i := range buf {
				buf[i] = nil
			}
			chunkBufs.Put(buf[:0]) //nolint:staticcheck // slice header churn is fine here
		}
	}
}

// chunkElems promotes a chunk for kernel-internal iteration: elements by
// value, with no reified variable per element (the consumer dereferences
// immediately and never assigns through the reference).
func chunkElems(v value.V) core.Gen {
	if l, ok := value.Deref(v).(*value.List); ok {
		return core.Elements(l)
	}
	return core.PromoteVal(v)
}

// SpawnMap spawns a data-parallel mapping of callable f over the elements
// of chunk, returning the generator of mapped results — the spawnMap method
// whose translation is Figure 5:
//
//	def spawnMap (f, chunk) { suspend ! (|> f(!chunk)); }
//
// The chunk is captured in the pipe's shadowed co-expression environment,
// so concurrent tasks cannot interfere.
func SpawnMap(f value.V, chunk value.V, buffer int) core.Gen {
	return core.Bang(spawnMapPipe(f, chunk, buffer, nil))
}

func spawnMapPipe(f value.V, chunk value.V, buffer int, pl *pool.Pool) *pipe.Pipe {
	c := coexpr.New([]value.V{f, chunk}, func(env []*value.Var) core.Gen {
		// x_0 in !chunk_s & f_s(x_0): map f over the shadowed chunk.
		x0 := value.NewCell(value.NullV)
		return core.Product(
			core.In(x0, chunkElems(env[1].Get())),
			core.ApplyVal(env[0].Get(), x0.Get),
		)
	})
	p := pipe.New(c, buffer)
	if pl != nil {
		p.OnPool(pl)
	}
	p.StartEager()
	return p
}

// Config carries the knobs of the DataParallel class from Figure 3/4.
type Config struct {
	// ChunkSize is the partition size (the paper uses 1000).
	ChunkSize int
	// Buffer bounds each task pipe's output queue; <= 0 selects the pipe
	// default.
	Buffer int
	// Workers sets the worker-pool size for chunk tasks. 0 uses the shared
	// process-wide pool (sized GOMAXPROCS); > 0 gives each drive cycle its
	// own pool of that size, shut down when the cycle exhausts.
	Workers int
	// Window bounds the number of in-flight chunk tasks; <= 0 selects
	// 2 × the worker count.
	Window int
	// Pool, when non-nil, supplies the worker pool directly (overriding
	// Workers). The pool is never shut down by this package.
	Pool *pool.Pool
}

// New mirrors `new DataParallel(1000)`.
func New(chunkSize int) Config { return Config{ChunkSize: chunkSize} }

// schedule resolves the pool and window for one drive cycle. owned reports
// whether the cycle must shut the pool down at exhaustion.
func (cfg Config) schedule() (pl *pool.Pool, window int, owned bool) {
	switch {
	case cfg.Pool != nil:
		pl = cfg.Pool
	case cfg.Workers > 0:
		pl, owned = pool.New(cfg.Workers), true
	default:
		pl = sharedPool()
	}
	window = cfg.Window
	if window <= 0 {
		window = 2 * pl.Size()
	}
	if window < 1 {
		window = 1
	}
	return pl, window, owned
}

// MapReduce maps callable f over the results of source generator s,
// reducing each chunk with callable r from initial value init in its own
// pipe, and returns the generator of per-chunk reduced results in chunk
// order — Figure 4's mapReduce under the windowed schedule described in the
// package comment.
func (cfg Config) MapReduce(f, s, r value.V, init value.V) core.Gen {
	return core.Defer(func() core.Gen {
		return cfg.newWindow(s, func(pl *pool.Pool, c value.V) *pipe.Pipe {
			return cfg.spawnReduce(pl, f, r, init, c)
		})
	})
}

// spawnReduce is the pipe body |> { var x = i; every (x = r(x, f(!c))); x }.
func (cfg Config) spawnReduce(pl *pool.Pool, f, r, init value.V, chunk value.V) *pipe.Pipe {
	c := coexpr.New([]value.V{f, r, init, chunk}, func(env []*value.Var) core.Gen {
		return core.NewGen(func(yield func(value.V) bool) {
			x := env[2].Get()
			elem := value.NewCell(value.NullV)
			mapped := core.Product(
				core.In(elem, chunkElems(env[3].Get())),
				core.ApplyVal(env[0].Get(), elem.Get),
			)
			rf := env[1].Get()
			var rargs [2]value.V
			core.Each(mapped, func(m value.V) bool {
				rargs[0], rargs[1] = x, m
				red, ok := core.First(core.InvokeVal(rf, rargs[:]...))
				if !ok {
					return false
				}
				x = red
				return true
			})
			yield(x)
		})
	})
	p := pipe.New(c, cfg.Buffer)
	if pl != nil {
		p.OnPool(pl)
	}
	p.StartEager()
	return p
}

// MapFlat is the data-parallel variant of §VII: chunks are mapped in
// concurrent pipes but NOT reduced per chunk; the mapped elements stream
// back flattened and in order for a serial downstream reduction. It
// "differ[s] in performing summation over the sequence returned from
// flattening the chunks, thus splitting out the reduction".
func (cfg Config) MapFlat(f, s value.V) core.Gen {
	return core.Defer(func() core.Gen {
		return cfg.newWindow(s, func(pl *pool.Pool, c value.V) *pipe.Pipe {
			return spawnMapPipe(f, c, cfg.Buffer, pl)
		})
	})
}

// windowTask is one in-flight chunk task: its pipe and the chunk list whose
// backing slice is recycled once the task leaves the window.
type windowTask struct {
	p     *pipe.Pipe
	chunk value.V
}

// windowGen drives the windowed schedule. MapReduce/MapFlat build one per
// cycle through their Defer wrapper; like every kernel generator it
// auto-restarts, running a fresh cycle (with a fresh owned pool, if the
// config asks for one) after reporting exhaustion.
type windowGen struct {
	cfg      Config
	spawn    func(pl *pool.Pool, chunk value.V) *pipe.Pipe
	chunks   core.Gen
	pl       *pool.Pool // nil between cycles when owned
	owned    bool
	window   int
	inflight []windowTask
	srcDone  bool
}

// newWindow builds the cycle generator: chunks of s, spawned through spawn,
// drained in order under the window bound.
func (cfg Config) newWindow(s value.V, spawn func(pl *pool.Pool, chunk value.V) *pipe.Pipe) core.Gen {
	return &windowGen{
		cfg:    cfg,
		spawn:  spawn,
		chunks: ChunkGen(core.InvokeVal(s), cfg.ChunkSize),
	}
}

// fill tops the window up: pull chunks from the source and spawn their
// tasks until the window is full or the source is exhausted.
func (g *windowGen) fill() {
	if g.pl == nil {
		g.pl, g.window, g.owned = g.cfg.schedule()
	}
	for !g.srcDone && len(g.inflight) < g.window {
		c, ok := g.chunks.Next()
		if !ok {
			g.srcDone = true
			return
		}
		c = value.Deref(c)
		g.inflight = append(g.inflight, windowTask{p: g.spawn(g.pl, c), chunk: c})
	}
}

func (g *windowGen) Next() (value.V, bool) {
	for {
		g.fill()
		if len(g.inflight) == 0 {
			g.endCycle()
			return nil, false
		}
		v, ok := g.inflight[0].p.Next()
		if ok {
			return v, true
		}
		// Eldest task exhausted (a producer error truncates its chunk's
		// results, exactly as draining the Figure 4 task list did): retire
		// it, recycle its chunk, move to the next task in chunk order.
		g.retire()
	}
}

// retire drops the eldest task from the window and recycles its chunk. The
// task's producer has already exited — it closes its transport only after
// its final access to the chunk — so the backing slice is free.
func (g *windowGen) retire() {
	t := g.inflight[0]
	n := copy(g.inflight, g.inflight[1:])
	g.inflight[n] = windowTask{}
	g.inflight = g.inflight[:n]
	recycleChunk(t.chunk)
}

// endCycle reports exhaustion and rewinds for a possible next cycle. All of
// the owned pool's tasks have completed (every spawned pipe was drained to
// failure), so Shutdown does not block.
func (g *windowGen) endCycle() {
	if g.owned && g.pl != nil {
		g.pl.Shutdown()
	}
	g.pl = nil
	g.chunks.Restart()
	g.srcDone = false
}

// Restart aborts the cycle: in-flight producers are stopped (releasing
// their pool workers) before the cycle state is reset. Stopped tasks'
// chunks are NOT recycled — a stopped producer may still be reading its
// chunk while it winds down.
func (g *windowGen) Restart() {
	for _, t := range g.inflight {
		t.p.Stop()
	}
	g.inflight = nil
	g.chunks.Restart()
	g.srcDone = false
	// An owned pool is kept: its stopped producers drain on their own, and
	// the next cycle reuses the workers. It is shut down when a cycle runs
	// to exhaustion.
}
