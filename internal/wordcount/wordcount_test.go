package wordcount

import (
	"math"
	"testing"
)

var testLines = GenerateLines(40, 8, 1)

func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

func TestCorpusDeterministic(t *testing.T) {
	a := GenerateLines(5, 3, 42)
	b := GenerateLines(5, 3, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corpus not deterministic at line %d", i)
		}
	}
	c := GenerateLines(5, 3, 43)
	if a[0] == c[0] {
		t.Fatalf("different seeds should differ")
	}
	if len(SplitWords(a[0])) != 3 {
		t.Fatalf("wordsPerLine: %q", a[0])
	}
}

func TestWordToNumberBase36(t *testing.T) {
	n, ok := WordToNumber(Light, "10")
	if !ok || n.Int64() != 36 {
		t.Fatalf("10 base 36 = %v %v", n, ok)
	}
	n, ok = WordToNumber(Light, "zz")
	if !ok || n.Int64() != 1295 {
		t.Fatalf("zz = %v", n)
	}
	if _, ok := WordToNumber(Light, "!!"); ok {
		t.Fatal("invalid word should fail")
	}
}

func TestHashNumberIsSqrt(t *testing.T) {
	n, _ := WordToNumber(Light, "100") // 36^2
	if h := HashNumber(Light, n); h != 36 {
		t.Fatalf("sqrt(1296) = %v", h)
	}
}

func TestHeavyweightIsHeavier(t *testing.T) {
	// Not a timing assertion — just that the heavy path runs and produces
	// a sane value on the same scale.
	n, _ := WordToNumber(Heavy, "abc")
	h := HashNumber(Heavy, n)
	if math.IsNaN(h) || h <= 0 {
		t.Fatalf("heavy hash = %v", h)
	}
	if Light.String() != "lightweight" || Heavy.String() != "heavyweight" {
		t.Fatal("weight names")
	}
}

func TestAllNativeVariantsAgree(t *testing.T) {
	cfg := NativeConfig{Buffer: 8, Workers: 4, ChunkSize: 16}
	want := NativeSequential(testLines, Light)
	if got := NativePipeline(testLines, Light, cfg); !approxEqual(got, want) {
		t.Errorf("native pipeline %v != sequential %v", got, want)
	}
	if got := NativeMapReduce(testLines, Light, cfg); !approxEqual(got, want) {
		t.Errorf("native map-reduce %v != sequential %v", got, want)
	}
	if got := NativeDataParallel(testLines, Light, cfg); !approxEqual(got, want) {
		t.Errorf("native data-parallel %v != sequential %v", got, want)
	}
}

func TestAllEmbeddedVariantsAgreeWithNative(t *testing.T) {
	cfg := EmbeddedConfig{Buffer: 8, ChunkSize: 7}
	want := NativeSequential(testLines, Light)
	if got := JuniconSequential(testLines, Light, cfg); !approxEqual(got, want) {
		t.Errorf("junicon sequential %v != native %v", got, want)
	}
	if got := JuniconPipeline(testLines, Light, cfg); !approxEqual(got, want) {
		t.Errorf("junicon pipeline %v != native %v", got, want)
	}
	if got := JuniconMapReduce(testLines, Light, cfg); !approxEqual(got, want) {
		t.Errorf("junicon map-reduce %v != native %v", got, want)
	}
	if got := JuniconDataParallel(testLines, Light, cfg); !approxEqual(got, want) {
		t.Errorf("junicon data-parallel %v != native %v", got, want)
	}
}

func TestHeavyweightVariantsAgree(t *testing.T) {
	small := GenerateLines(6, 4, 2)
	cfg := EmbeddedConfig{Buffer: 4, ChunkSize: 2}
	want := NativeSequential(small, Heavy)
	if got := JuniconMapReduce(small, Heavy, cfg); !approxEqual(got, want) {
		t.Errorf("heavy junicon map-reduce %v != native %v", got, want)
	}
	if got := NativeMapReduce(small, Heavy, NativeConfig{Workers: 2, ChunkSize: 8}); !approxEqual(got, want) {
		t.Errorf("heavy native map-reduce %v != native seq %v", got, want)
	}
}

func TestInterpretedVariantsAgree(t *testing.T) {
	small := GenerateLines(10, 5, 3)
	want := NativeSequential(small, Light)
	got, err := InterpretedSequential(small, Light)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(got, want) {
		t.Errorf("interpreted sequential %v != native %v", got, want)
	}
	got, err = InterpretedPipeline(small, Light)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(got, want) {
		t.Errorf("interpreted pipeline %v != native %v", got, want)
	}
}

func TestEmptyAndDegenerateCorpora(t *testing.T) {
	cfg := EmbeddedConfig{}
	if got := JuniconSequential(nil, Light, cfg); got != 0 {
		t.Errorf("empty corpus = %v", got)
	}
	if got := NativeMapReduce(nil, Light, NativeConfig{}); got != 0 {
		t.Errorf("native empty = %v", got)
	}
	one := []string{"abc"}
	want := NativeSequential(one, Light)
	if got := JuniconMapReduce(one, Light, cfg); !approxEqual(got, want) {
		t.Errorf("single line mapreduce %v != %v", got, want)
	}
}

func TestChunkSizeInsensitivity(t *testing.T) {
	want := NativeSequential(testLines, Light)
	for _, chunk := range []int{1, 3, 1000} {
		cfg := EmbeddedConfig{ChunkSize: chunk, Buffer: 2}
		if got := JuniconMapReduce(testLines, Light, cfg); !approxEqual(got, want) {
			t.Errorf("chunk %d: %v != %v", chunk, got, want)
		}
	}
}
