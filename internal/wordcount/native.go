package wordcount

import (
	"math/big"

	"junicon/internal/queue"
	"junicon/internal/streams"
)

// The native suite (§VII): "a sequential word-count, a pipelined version
// built using BlockingQueues over two threads, a parallel stream-based
// version that implemented map-reduce, and a data-parallel version that was
// also stream-based but that split out the reduction."

// NativeConfig carries the native suite's knobs.
type NativeConfig struct {
	// Buffer bounds the pipeline's blocking queue (default 1024).
	Buffer int
	// Workers and ChunkSize configure the parallel-stream variants.
	Workers   int
	ChunkSize int
}

func (c NativeConfig) buffer() int {
	if c.Buffer <= 0 {
		return 1024
	}
	return c.Buffer
}

func (c NativeConfig) parallel() streams.ParallelConfig {
	return streams.ParallelConfig{Workers: c.Workers, ChunkSize: c.ChunkSize}
}

// NativeSequential is the plain single-threaded program.
func NativeSequential(lines []string, w Weight) float64 {
	return SequentialTotal(lines, w)
}

// NativePipeline splits the hash into two tasks over two goroutines
// connected by a bounded blocking queue: stage one performs word→number,
// stage two hashes and sums.
func NativePipeline(lines []string, w Weight, cfg NativeConfig) float64 {
	q := queue.NewArrayBlocking[*big.Int](cfg.buffer())
	go func() {
		for _, line := range lines {
			for _, word := range SplitWords(line) {
				n, ok := WordToNumber(w, word)
				if !ok {
					continue
				}
				if q.Put(n) != nil {
					return
				}
			}
		}
		q.Close()
	}()
	total := 0.0
	for {
		n, err := q.Take()
		if err != nil {
			return total
		}
		total += HashNumber(w, n)
	}
}

// NativeMapReduce is the parallel-stream map-reduce: chunks of words are
// mapped and reduced on a worker pool, with per-chunk partials combined in
// order.
func NativeMapReduce(lines []string, w Weight, cfg NativeConfig) float64 {
	words := streams.FlatMap(streams.FromSlice(lines), SplitWords)
	return streams.ParallelMapReduce(words, cfg.parallel(),
		func(word string) float64 {
			n, ok := WordToNumber(w, word)
			if !ok {
				return 0
			}
			return HashNumber(w, n)
		},
		0.0,
		func(acc, h float64) float64 { return acc + h },
		func(a, b float64) float64 { return a + b },
	)
}

// NativeDataParallel maps chunks in parallel but splits out the reduction:
// the flattened hash stream is summed serially (§VII's fourth variant).
func NativeDataParallel(lines []string, w Weight, cfg NativeConfig) float64 {
	words := streams.FlatMap(streams.FromSlice(lines), SplitWords)
	hashes := streams.ParallelMap(words, cfg.parallel(), func(word string) float64 {
		n, ok := WordToNumber(w, word)
		if !ok {
			return 0
		}
		return HashNumber(w, n)
	})
	return streams.Reduce(hashes, 0.0, func(acc, h float64) float64 { return acc + h })
}
