package wordcount

import (
	"math"
	"strings"
	"testing"

	"junicon/internal/remote"
)

// startWorkers spins up n in-process word-count workers on loopback ports.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		srv := remote.NewServer()
		RegisterWordCount(srv)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = addr.String()
	}
	return addrs
}

func TestDistributedMapReduceMatchesSequential(t *testing.T) {
	lines := GenerateLines(200, 8, 7)
	want := SequentialTotal(lines, Light)
	addrs := startWorkers(t, 2)
	got, err := DistributedMapReduce(lines, Light, DistributedConfig{
		Workers:   addrs,
		ChunkSize: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Fatalf("distributed total %v, sequential %v", got, want)
	}
}

func TestDistributedMapReduceSingleWorker(t *testing.T) {
	lines := GenerateLines(50, 5, 11)
	want := SequentialTotal(lines, Light)
	addrs := startWorkers(t, 1)
	got, err := DistributedMapReduce(lines, Light, DistributedConfig{Workers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Fatalf("distributed total %v, sequential %v", got, want)
	}
}

func TestDistributedMapReduceSurfacesWorkerFailure(t *testing.T) {
	lines := GenerateLines(10, 4, 3)
	addrs := startWorkers(t, 1)
	// Second worker address is dead: the coordinator must fail, not hang
	// or silently return a partial total.
	_, err := DistributedMapReduce(lines, Light, DistributedConfig{
		Workers: []string{addrs[0], "127.0.0.1:1"},
	})
	if err == nil {
		t.Fatal("dead worker did not surface as an error")
	}
}

func TestDistributedMapReduceNoWorkers(t *testing.T) {
	if _, err := DistributedMapReduce(nil, Light, DistributedConfig{}); err == nil {
		t.Fatal("want error with no workers")
	}
}

func TestParseWeight(t *testing.T) {
	for _, w := range []Weight{Light, Heavy} {
		got, err := ParseWeight(w.String())
		if err != nil || got != w {
			t.Fatalf("ParseWeight(%q) = %v, %v", w.String(), got, err)
		}
	}
	if _, err := ParseWeight("featherweight"); err == nil {
		t.Fatal("want error for unknown weight")
	}
}

func TestHashGeneratorStreamsPerWord(t *testing.T) {
	lines := []string{"ab cd", "ef"}
	addrs := startWorkers(t, 1)
	p := remote.Open(addrs[0], HashGenerator, wcArgList(Light, 1, lines), remote.Config{Buffer: 2})
	defer p.Stop()
	n := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		n++
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if want := len(strings.Fields("ab cd ef")); n != want {
		t.Fatalf("hash stream yielded %d values, want %d", n, want)
	}
}

func TestWordCountArgValidation(t *testing.T) {
	addrs := startWorkers(t, 1)
	p := remote.Open(addrs[0], MapReduceGenerator, nil, remote.Config{})
	defer p.Stop()
	if _, ok := p.Next(); ok {
		t.Fatal("malformed args were served")
	}
	if _, ok := p.Err().(*remote.RemoteError); !ok {
		t.Fatalf("want *RemoteError for malformed args, got %v", p.Err())
	}
}
