// Package wordcount implements the benchmark workload of §VII: the
// WordCount program of Figure 3, which hashes lines of text by splitting
// each line into words, converting words to numbers (base-36, arbitrary
// precision), hashing the numbers (square root), and summing the result.
//
// The package provides both benchmark suites:
//
//   - the native suite (sequential, two-thread blocking-queue pipeline,
//     parallel-stream map-reduce, and data-parallel with the reduction
//     split out), the Go analogue of the paper's Java programs; and
//   - the embedded suite: the same four programs expressed as concurrent
//     generators over the kernel — the exact compositions the translator
//     emits (§5, Figure 5) — plus an interpreted path for the ablation.
//
// Two task weights are provided: the lightweight hash of Figure 3 and a
// heavyweight variant "increased ... by a factor of roughly 80, achieved
// using trigonometry and prime number functions" (§VII).
package wordcount

import (
	"math"
	"math/big"
	"math/rand"
	"strconv"
	"strings"
)

// Weight selects the computational weight of the hash functions.
type Weight int

// Weights of §VII.
const (
	Light Weight = iota // Figure 3's functions as written
	Heavy               // ≈80× heavier: trigonometry + probable-prime tests
)

func (w Weight) String() string {
	if w == Heavy {
		return "heavyweight"
	}
	return "lightweight"
}

// heavyRounds calibrates the heavyweight factor (≈80×, §VII).
const heavyRounds = 40

// GenerateLines builds a deterministic corpus: numLines lines of
// wordsPerLine base-36 words. The corpus substitutes for the paper's text
// input, which is not published; any text with uniformly distributed words
// exercises the same code path.
func GenerateLines(numLines, wordsPerLine int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	lines := make([]string, numLines)
	var b strings.Builder
	for i := range lines {
		b.Reset()
		for w := 0; w < wordsPerLine; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			n := 3 + rng.Intn(6)
			for k := 0; k < n; k++ {
				b.WriteByte(alphabet[rng.Intn(len(alphabet))])
			}
		}
		lines[i] = b.String()
	}
	return lines
}

// SplitWords splits a line on whitespace (Figure 3's split("\\s+")).
func SplitWords(line string) []string { return strings.Fields(line) }

// WordToNumber converts a word to an arbitrary-precision number by base-36
// interpretation (Figure 3's new BigInteger(word, 36)). ok is false for
// words with characters outside base 36 — native failure.
func WordToNumber(w Weight, word string) (*big.Int, bool) {
	// Words that fit in an int64 (≤ 12 base-36 digits) take the machine
	// parse; big.Int scanning allocates several intermediates per word and
	// dominated the map-reduce allocation profile. Out-of-range or
	// malformed words fall through to the arbitrary-precision parse, which
	// remains the semantic definition.
	var n *big.Int
	if v, err := strconv.ParseInt(word, 36, 64); err == nil {
		n = big.NewInt(v)
	} else {
		var ok bool
		n, ok = new(big.Int).SetString(strings.ToLower(word), 36)
		if !ok {
			return nil, false
		}
	}
	if w == Heavy {
		n = heavyNumberWork(n)
	}
	return n, true
}

// HashNumber hashes a number to a float (Figure 3's Math.sqrt).
func HashNumber(w Weight, n *big.Int) float64 {
	if n.IsInt64() {
		// float64(int64) rounds to nearest exactly as the big.Float path.
		return HashSmall(w, n.Int64())
	}
	f, _ := new(big.Float).SetInt(n).Float64()
	return hashFloat(w, f)
}

// HashSmall is HashNumber for numbers that fit in an int64, avoiding the
// big.Int boxing on the overwhelmingly common small-word path.
func HashSmall(w Weight, n int64) float64 { return hashFloat(w, float64(n)) }

func hashFloat(w Weight, f float64) float64 {
	h := math.Sqrt(math.Abs(f))
	if w == Heavy {
		h = heavyHashWork(h)
	}
	return h
}

// heavyNumberWork is the heavyweight wordToNumber tail: probable-prime
// tests over derived numbers (the BigInteger prime functions of §VII).
func heavyNumberWork(n *big.Int) *big.Int {
	acc := new(big.Int).Set(n)
	one := big.NewInt(1)
	for i := 0; i < heavyRounds/2; i++ {
		acc.Add(acc, one)
		if acc.ProbablyPrime(1) {
			acc.Add(acc, one)
		}
	}
	return acc
}

// heavyHashWork is the heavyweight hashNumber tail: a trigonometric churn
// (the Math functions of §VII).
func heavyHashWork(h float64) float64 {
	x := h
	for i := 0; i < heavyRounds; i++ {
		x = math.Sin(x) + math.Cos(x/3) + math.Sqrt(math.Abs(x)+1)
	}
	// Keep the magnitude of the lightweight hash so totals stay comparable
	// in scale (the exact value differs; each suite is self-consistent).
	return h + x - x // == h, but only after the churn above
}

// SequentialTotal computes the word-count hash total in the obvious
// single-threaded way; it is both the native Sequential benchmark and the
// reference value the tests compare every other variant against.
func SequentialTotal(lines []string, w Weight) float64 {
	total := 0.0
	for _, line := range lines {
		for _, word := range SplitWords(line) {
			n, ok := WordToNumber(w, word)
			if !ok {
				continue
			}
			total += HashNumber(w, n)
		}
	}
	return total
}
