package wordcount

import (
	"fmt"

	"junicon/internal/core"
	"junicon/internal/mapreduce"
	"junicon/internal/pipe"
	"junicon/internal/value"
)

// The embedded suite (§VII): "a sequential word-count, a pipeline-parallel
// word-count that split the hash function into two tasks, a map-reduce
// word-count that spread the hash function and its summation reduction over
// chunks of data, and a data-parallel word-count that ... split out the
// reduction".
//
// These are the kernel compositions the translator emits for the Figure 3
// program — the "compiled to Java" forms of the paper, here compiled to
// kernel-constructor calls. The interpreted path (embedded_interp.go) runs
// the same programs from Junicon source for the ablation.

// EmbeddedConfig carries the embedded suite's knobs.
type EmbeddedConfig struct {
	// Buffer bounds each pipe's blocking queue (default pipe.DefaultBuffer).
	Buffer int
	// ChunkSize is the map-reduce partition size in lines (default 1000,
	// the paper's DataParallel(1000)).
	ChunkSize int
	// Workers selects a dedicated task pool of that many workers for the
	// map-reduce and data-parallel variants (default: the shared
	// process-wide pool sized to GOMAXPROCS).
	Workers int
	// Window bounds in-flight chunk tasks (default 2× the pool's workers).
	Window int
}

func (c EmbeddedConfig) dp() mapreduce.Config {
	return mapreduce.Config{
		ChunkSize: c.chunk(),
		Buffer:    c.Buffer,
		Workers:   c.Workers,
		Window:    c.Window,
	}
}

func (c EmbeddedConfig) chunk() int {
	if c.ChunkSize <= 0 {
		return 1000
	}
	return c.ChunkSize
}

// wordToNumberProc exposes the host hash stage as a native (Figure 3's
// public Object wordToNumber), participating in goal-directed evaluation:
// malformed words fail rather than erroring.
func wordToNumberProc(w Weight) *value.Native {
	return value.NewNative("wordToNumber", func(args ...value.V) (value.V, error) {
		s, ok := value.ToString(args[0])
		if !ok {
			return nil, fmt.Errorf("wordToNumber: string expected")
		}
		n, ok := WordToNumber(w, string(s))
		if !ok {
			return nil, nil // native failure
		}
		return value.NewBig(n), nil
	})
}

// hashNumberProc exposes the second host hash stage (Figure 3's
// hashNumber).
func hashNumberProc(w Weight) *value.Native {
	return value.NewNative("hashNumber", func(args ...value.V) (value.V, error) {
		i, ok := value.ToInteger(args[0])
		if !ok {
			return nil, fmt.Errorf("hashNumber: integer expected")
		}
		if v, fits := i.Int64(); fits {
			return value.Real(HashSmall(w, v)), nil
		}
		return value.Real(HashNumber(w, i.Big())), nil
	})
}

// readLinesProc is Figure 3's readLines: suspend !lines. The lines are
// boxed once at construction so each invocation yields without allocating.
func readLinesProc(lines []string) *value.Proc {
	boxed := make([]value.V, len(lines))
	for i, l := range lines {
		boxed[i] = value.String(l)
	}
	return value.NewProc("readLines", 0, func(...value.V) core.Gen {
		return core.ValuesOf(boxed)
	})
}

// splitWordsProc is Figure 3's splitWords: suspend !line::split("\\s+").
func splitWordsProc() *value.Proc {
	return value.NewProc("splitWords", 1, func(args ...value.V) core.Gen {
		s, ok := value.ToString(args[0])
		if !ok {
			value.Raise(value.ErrString, "splitWords: string expected", value.Deref(args[0]))
		}
		words := SplitWords(string(s))
		boxed := make([]value.V, len(words))
		for i, w := range words {
			boxed[i] = value.String(w)
		}
		return core.ValuesOf(boxed)
	})
}

// hashWordsProc is Figure 3's hashWords: the whole per-line hash as one
// generator function — suspend hashNumber(wordToNumber(!splitWords(line))).
func hashWordsProc(w Weight) *value.Proc {
	split := splitWordsProc()
	toNum := wordToNumberProc(w)
	hash := hashNumberProc(w)
	return value.NewProc("hashWords", 1, func(args ...value.V) core.Gen {
		line := value.Deref(args[0])
		word := value.NewCell(value.NullV)
		num := value.NewCell(value.NullV)
		return core.Product(
			core.In(word, split.Call(line)),
			core.In(num, core.ApplyNative(toNum, word.Get)),
			core.ApplyNative(hash, num.Get),
		)
	})
}

// sumHashProc is Figure 3's sumHash reduction function.
var sumHashProc = value.NewProc("sumHash", 2, func(args ...value.V) core.Gen {
	return core.Unit(value.Add(args[0], args[1]))
})

// hashPipelineGen builds the full hash generator for the sequential and
// pipeline variants: the normalized form of
//
//	hashNumber(wordToNumber(!splitWords(readLines())))
//
// with, for the pipeline variant, a generator proxy spun around the
// word→number stage exactly as Figure 3's runPipeline:
//
//	hashNumber( ! (|> wordToNumber( ! splitWords(readLines()))))
func hashPipelineGen(lines []string, w Weight, piped bool, buffer int) core.Gen {
	readLines := readLinesProc(lines)
	split := splitWordsProc()
	toNum := wordToNumberProc(w)
	hash := hashNumberProc(w)

	line := value.NewCell(value.NullV)
	word := value.NewCell(value.NullV)
	stage1 := core.Product(
		core.In(line, readLines.Call()),
		core.In(word, core.Defer(func() core.Gen { return split.Call(line.Get()) })),
		core.ApplyNative(toNum, word.Get),
	)
	numbers := stage1
	if piped {
		p := pipe.FromGen(stage1, buffer)
		p.StartEager()
		numbers = core.Bang(p)
	}
	num := value.NewCell(value.NullV)
	return core.Product(
		core.In(num, numbers),
		core.ApplyNative(hash, num.Get),
	)
}

// sumGen drives a generator of reals to failure, summing (the host for
// statement of Figure 3's runPipeline).
func sumGen(g core.Gen) float64 {
	total := 0.0
	core.Each(g, func(v value.V) bool {
		r, ok := value.ToReal(v)
		if ok {
			total += float64(r)
		}
		return true
	})
	return total
}

// JuniconSequential runs the embedded sequential word-count.
func JuniconSequential(lines []string, w Weight, cfg EmbeddedConfig) float64 {
	return sumGen(hashPipelineGen(lines, w, false, cfg.Buffer))
}

// JuniconPipeline runs the embedded pipeline-parallel word-count: the hash
// is split into two tasks joined by a generator proxy.
func JuniconPipeline(lines []string, w Weight, cfg EmbeddedConfig) float64 {
	return sumGen(hashPipelineGen(lines, w, true, cfg.Buffer))
}

// JuniconMapReduce runs the embedded map-reduce word-count (Figure 3's
// runMapReduce over Figure 4's mapReduce): per-chunk pipes map hashWords
// and reduce with sumHash; the per-chunk partials are summed by the host
// loop.
func JuniconMapReduce(lines []string, w Weight, cfg EmbeddedConfig) float64 {
	g := cfg.dp().MapReduce(hashWordsProc(w), readLinesProc(lines), sumHashProc, value.Real(0))
	return sumGen(g)
}

// JuniconDataParallel runs the embedded data-parallel word-count: chunks
// are mapped in concurrent pipes but the reduction is split out and
// performed serially over the flattened result sequence.
func JuniconDataParallel(lines []string, w Weight, cfg EmbeddedConfig) float64 {
	g := cfg.dp().MapFlat(hashWordsProc(w), readLinesProc(lines))
	return sumGen(g)
}
