package wordcount

// The distributed suite: the map-reduce word-count of §VII with the map
// side pushed across process boundaries. Each worker serves the embedded
// JuniconMapReduce composition over its shard of the corpus as a remote
// generator; the coordinator opens one remote pipe per worker, drains the
// per-chunk partial sums, and combines them. This is Figure 4's mapReduce
// with the per-chunk pipes replaced by remote pipes — the same demand-
// driven, failure-terminated contract, now over TCP.

import (
	"fmt"
	"sync"

	"junicon/internal/core"
	"junicon/internal/mapreduce"
	"junicon/internal/remote"
	"junicon/internal/value"
)

// MapReduceGenerator is the name under which RegisterWordCount registers
// the worker-side word-count generator.
const MapReduceGenerator = "wc.mapreduce"

// HashGenerator is the name of the per-word hash stream generator — the
// finest-grained remote word-count, useful for exercising credit flow.
const HashGenerator = "wc.hash"

// ParseWeight inverts Weight.String for wire and flag use.
func ParseWeight(s string) (Weight, error) {
	switch s {
	case Light.String():
		return Light, nil
	case Heavy.String():
		return Heavy, nil
	}
	return Light, fmt.Errorf("wordcount: unknown weight %q", s)
}

// wcArgs decodes the argument convention shared by both generators:
// [weightString, chunkSize, linesList].
func wcArgs(args []value.V) (Weight, int, []string, error) {
	if len(args) != 3 {
		return Light, 0, nil, fmt.Errorf("wordcount: want [weight, chunkSize, lines], got %d args", len(args))
	}
	ws, ok := value.ToString(args[0])
	if !ok {
		return Light, 0, nil, fmt.Errorf("wordcount: weight must be a string")
	}
	w, err := ParseWeight(string(ws))
	if err != nil {
		return Light, 0, nil, err
	}
	ci, ok := value.ToInteger(args[1])
	if !ok {
		return Light, 0, nil, fmt.Errorf("wordcount: chunkSize must be an integer")
	}
	chunk, ok := ci.Int64()
	if !ok || chunk < 1 {
		return Light, 0, nil, fmt.Errorf("wordcount: chunkSize out of range")
	}
	ll, ok := value.Deref(args[2]).(*value.List)
	if !ok {
		return Light, 0, nil, fmt.Errorf("wordcount: lines must be a list")
	}
	lines := make([]string, 0, ll.Len())
	for _, e := range ll.Elems() {
		s, ok := value.ToString(e)
		if !ok {
			return Light, 0, nil, fmt.Errorf("wordcount: line is %s, want string", value.TypeOf(value.Deref(e)))
		}
		lines = append(lines, string(s))
	}
	return w, int(chunk), lines, nil
}

// wcArgList builds the wire argument list wcArgs decodes.
func wcArgList(w Weight, chunkSize int, lines []string) []value.V {
	ll := value.NewList()
	for _, l := range lines {
		ll.Put(value.String(l))
	}
	return []value.V{value.String(w.String()), value.NewInt(int64(chunkSize)), ll}
}

// RegisterWordCount registers the distributed word-count generators on a
// remote server. Both junicond and the tests register through here, so the
// daemon and in-process workers serve identical streams.
func RegisterWordCount(srv *remote.Server) {
	srv.Register(MapReduceGenerator, func(args []value.V) (core.Gen, error) {
		w, chunk, lines, err := wcArgs(args)
		if err != nil {
			return nil, err
		}
		// The worker-side map: the embedded map-reduce composition of
		// Figure 4, yielding one partial hash sum per chunk. Chunks run
		// on concurrent local pipes; partials stream back under the
		// client's credit.
		dp := mapreduce.Config{ChunkSize: chunk}
		return dp.MapReduce(hashWordsProc(w), readLinesProc(lines), sumHashProc, value.Real(0)), nil
	})
	srv.Register(HashGenerator, func(args []value.V) (core.Gen, error) {
		w, _, lines, err := wcArgs(args)
		if err != nil {
			return nil, err
		}
		// One hash per word: the full Figure 3 hash generator, streamed.
		return hashPipelineGen(lines, w, false, 0), nil
	})
}

// DistributedConfig carries the coordinator's knobs.
type DistributedConfig struct {
	// Workers lists junicond addresses; at least one is required.
	Workers []string
	// ChunkSize is the per-worker map-reduce partition (default 1000).
	ChunkSize int
	// Remote configures each remote pipe (buffer = credit bound).
	Remote remote.Config
}

func (c DistributedConfig) chunk() int {
	if c.ChunkSize <= 0 {
		return 1000
	}
	return c.ChunkSize
}

// DistributedMapReduce runs the distributed word-count: lines are sharded
// round-robin across the workers, each worker maps and partially reduces
// its shard, and the coordinator sums the streamed partials. Any worker
// failure (connection loss, producer error, vet refusal) aborts the whole
// computation with that worker's error.
func DistributedMapReduce(lines []string, w Weight, cfg DistributedConfig) (float64, error) {
	if len(cfg.Workers) == 0 {
		return 0, fmt.Errorf("wordcount: no workers configured")
	}
	shards := make([][]string, len(cfg.Workers))
	for i, line := range lines {
		shards[i%len(shards)] = append(shards[i%len(shards)], line)
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		total  float64
		outErr error
	)
	for i, addr := range cfg.Workers {
		if len(shards[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(addr string, shard []string) {
			defer wg.Done()
			p := remote.Open(addr, MapReduceGenerator, wcArgList(w, cfg.chunk(), shard), cfg.Remote)
			defer p.Stop()
			sum := 0.0
			for {
				v, ok := p.Next()
				if !ok {
					break
				}
				if r, ok := value.ToReal(v); ok {
					sum += float64(r)
				}
			}
			mu.Lock()
			defer mu.Unlock()
			if err := p.Err(); err != nil {
				if outErr == nil {
					outErr = fmt.Errorf("worker %s: %w", addr, err)
				}
				return
			}
			total += sum
		}(addr, shards[i])
	}
	wg.Wait()
	if outErr != nil {
		return 0, outErr
	}
	return total, nil
}
