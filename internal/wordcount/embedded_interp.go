package wordcount

import (
	"fmt"
	"io"

	"junicon/internal/interp"
	"junicon/internal/value"
)

// The interpreted path: the Figure 3 WordCount methods as Junicon source,
// loaded into the interpreter with the host hash stages registered as
// natives — the mixed-language program of §4 run end to end. Used by the
// interpreter-overhead ablation (DESIGN.md); the paper's Figure 6 numbers
// correspond to the translated/kernel path in embedded.go.

// Figure3Source is the embedded region of Figure 3, adapted to the
// implemented subset (our methods generate directly, so the surface !
// around method results is not needed).
const Figure3Source = `
def readLines () { suspend !lines; }
def splitWords (line) { suspend !line::split(); }
def hashWords (line) {
  suspend this::hashNumber(this::wordToNumber(splitWords(line)));
}
def sumHash (sofar, hash) { return sofar + hash; }
`

// NewInterpreter returns an interpreter loaded with the Figure 3 program:
// the corpus bound to the global lines, and the host stages wordToNumber,
// hashNumber and split registered as natives. Extra options pass through
// (interp.WithOptimize for the facts-driven ablation).
func NewInterpreter(lines []string, w Weight, opts ...interp.Option) (*interp.Interp, error) {
	in := interp.New(append([]interp.Option{interp.WithOutput(io.Discard)}, opts...)...)
	in.RegisterNative("wordToNumber", wordToNumberProc(w).Fn)
	in.RegisterNative("hashNumber", hashNumberProc(w).Fn)
	in.RegisterNative("split", func(args ...value.V) (value.V, error) {
		s, ok := value.ToString(args[0])
		if !ok {
			return nil, fmt.Errorf("split: string expected")
		}
		out := value.NewList()
		for _, word := range SplitWords(string(s)) {
			out.Put(value.String(word))
		}
		return out, nil
	})
	corpus := value.NewList()
	for _, l := range lines {
		corpus.Put(value.String(l))
	}
	in.Define("lines", corpus)
	if err := in.LoadProgram(Figure3Source); err != nil {
		return nil, err
	}
	return in, nil
}

// SequentialExpr and PipelineExpr are Figure 3's driver expressions: the
// word-count sum without and with the generator proxy pipe. Exported so
// the facts-driven ablation can evaluate them repeatedly against one
// loaded interpreter (the embedding steady state: load once, eval many).
const (
	SequentialExpr = `this::hashNumber(this::wordToNumber(splitWords(readLines())))`
	PipelineExpr   = `this::hashNumber( ! (|> this::wordToNumber(splitWords(readLines()))))`
)

// InterpretedSequential runs the sequential word-count through the
// interpreter: the expression of Figure 3's runPipeline without the pipe.
// Extra options pass through to the interpreter (the facts-driven ablation
// runs this same workload with interp.WithOptimize, pinning that the
// optimizer cannot regress a path it has nothing to prove about — the
// native stages are effect-opaque, so no fast path may engage).
func InterpretedSequential(lines []string, w Weight, opts ...interp.Option) (float64, error) {
	in, err := NewInterpreter(lines, w, opts...)
	if err != nil {
		return 0, err
	}
	return InterpSum(in, SequentialExpr)
}

// InterpretedPipeline runs Figure 3's runPipeline expression verbatim: a
// generator proxy spun around the word→number stage.
func InterpretedPipeline(lines []string, w Weight, opts ...interp.Option) (float64, error) {
	in, err := NewInterpreter(lines, w, opts...)
	if err != nil {
		return 0, err
	}
	return InterpSum(in, PipelineExpr)
}

// InterpSum evaluates expr on a loaded interpreter and sums the reals it
// generates.
func InterpSum(in *interp.Interp, expr string) (float64, error) {
	g, err := in.EvalGen(expr)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for {
		v, ok := g.Next()
		if !ok {
			return total, nil
		}
		if r, isReal := value.ToReal(value.Deref(v)); isReal {
			total += float64(r)
		}
	}
}
