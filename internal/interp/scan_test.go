package interp

import (
	"testing"
)

// String scanning tests: the e1 ? e2 scanning expression, the reversible
// matching functions tab and move, and &subject-defaulting analysis
// functions — "string processing, the forte of Icon and Unicon" (§2A).

func TestScanTabToFind(t *testing.T) {
	in := New()
	// Classic idiom: extract up to a delimiter.
	expect(t, in, `"key=value" ? tab(find("="))`, `"key"`)
	// After tab, the rest of the subject is available via tab(0).
	expect(t, in, `"key=value" ? { tab(find("=")); move(1); tab(0) }`, `"value"`)
}

func TestScanMoveProducesTraversedText(t *testing.T) {
	in := New()
	expect(t, in, `"hello" ? move(2)`, `"he"`)
	expect(t, in, `"hello" ? { move(2); move(3) }`, `"llo"`)
	// Moving past the end fails.
	expect(t, in, `"hi" ? move(5)`)
}

func TestScanPosTest(t *testing.T) {
	in := New()
	expect(t, in, `"abc" ? { move(1); pos(2) }`, "2")
	expect(t, in, `"abc" ? { move(1); pos(1) }`) // fails: pos is 2
	// pos(-1) is position n+1-1.
	expect(t, in, `"abc" ? { tab(0); pos(0) }`, "4")
}

func TestScanFindDefaultsToSubjectAndPos(t *testing.T) {
	in := New()
	// find inside a scan starts at &pos.
	expect(t, in, `"abab" ? { move(1); find("ab") }`, "3")
	// Explicit subject still works inside a scan.
	expect(t, in, `"xyz" ? find("n", "banana")`, "3", "5")
}

func TestScanManyAnyMatch(t *testing.T) {
	in := New()
	expect(t, in, `"  indented" ? tab(many(' '))`, `"  "`)
	expect(t, in, `"abc" ? any('ab')`, "2")
	expect(t, in, `"abc" ? any('xyz')`)
	expect(t, in, `"hello world" ? match("hello")`, "6")
	expect(t, in, `"hello world" ? match("world")`)
}

func TestScanBacktrackingReversesTab(t *testing.T) {
	in := New()
	// tab(upto('l')) & ="lo": the first 'l' (pos 3) fails the match
	// ("ll" ≠ "lo"), backtracking restores &pos, upto resumes to the
	// second 'l' where tab succeeds and the match completes.
	expect(t, in, `"hello" ? { tab(upto('l')) & tabMatch("lo") }`, `"lo"`)
	// With no later alternative, the whole scan fails and pos damage is
	// undone between attempts.
	expect(t, in, `"hello" ? { tab(upto('l')) & tabMatch("zz") }`)
}

func TestScanGeneratesPerSubject(t *testing.T) {
	in := New()
	// The subject operand is searched too: each of the two subjects is
	// scanned in its own environment.
	expect(t, in, `("ab" | "cd") ? move(1)`, `"a"`, `"c"`)
}

func TestScanBodyGeneratesMultipleResults(t *testing.T) {
	in := New()
	expect(t, in, `"banana" ? find("an")`, "2", "4")
	expect(t, in, `"banana" ? upto('an')`, "2", "3", "4", "5", "6")
}

func TestNestedScans(t *testing.T) {
	in := New()
	// Inner scan gets its own environment; outer resumes unharmed.
	expect(t, in, `"outer" ? { move(1); ("in" ? move(1)) || tab(0) }`, `"iuter"`)
}

func TestScanEnvironmentRestoredOutside(t *testing.T) {
	in := New()
	// After the scan completes, tab/move (no environment) fail.
	expect(t, in, `{ s := "ab" ? move(1); tab(3) }`)
	expect(t, in, `{ "ab" ? move(1); move(1) }`)
}

func TestScanSuspendedEnvironmentSwaps(t *testing.T) {
	in := New()
	// Icon's swap discipline: while the scan is suspended, the outer
	// environment rules; resuming the scan re-installs the inner one.
	// Here the outer expression interleaves two scans.
	expect(t, in, `("ab" ? move(1)) || ("cd" ? move(1))`, `"ac"`)
}

func TestScanWithinProcedure(t *testing.T) {
	in := New()
	// The classic splitting idiom: bind the field first (bounding the
	// alternatives) and then suspend it — resuming a bare
	// `suspend tab(upto(…)|0)` would backtrack into the alternatives,
	// which is faithful Icon behaviour but not what a splitter wants.
	if err := in.LoadProgram(`
def fields(s) {
  s ? {
    while not pos(0) do {
      w := tab(upto(',') | 0);
      suspend w;
      move(1);
    };
  };
}
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in, `fields("a,bc,def")`, `"a"`, `"bc"`, `"def"`)
}

func TestScanSubjectCoercion(t *testing.T) {
	in := New()
	// Numeric subjects coerce to strings.
	expect(t, in, `12345 ? move(2)`, `"12"`)
}

func TestScanTypeErrorOnBadSubject(t *testing.T) {
	in := New()
	if _, err := in.Eval(`[1,2] ? move(1)`, 1); err == nil {
		t.Fatal("list subject should raise")
	}
}

func TestSubjectAndPosKeywords(t *testing.T) {
	in := New()
	expect(t, in, `"abc" ? &subject`, `"abc"`)
	expect(t, in, `"abc" ? { move(2); &pos }`, "3")
	// &pos is assignable inside a scan; nonpositive positions count from
	// the right.
	expect(t, in, `"hello" ? { &pos := 3; tab(0) }`, `"llo"`)
	expect(t, in, `"hello" ? { &pos := -1; tab(0) }`, `"o"`)
	// Assigning &subject resets &pos.
	expect(t, in, `"xyz" ? { move(2); &subject := "fresh"; [&pos, tab(0)] }`, `[1,"fresh"]`)
	// Outside any scan, reads default and writes raise.
	expect(t, in, `&subject`, `""`)
	expect(t, in, `&pos`, "1")
	if _, err := in.Eval(`&pos := 2`, 1); err == nil {
		t.Fatal("assigning &pos outside a scan should raise")
	}
	// Out-of-range &pos raises (Icon runtime error 205-ish).
	if _, err := in.Eval(`"ab" ? (&pos := 9)`, 1); err == nil {
		t.Fatal("out-of-range &pos should raise")
	}
}

func TestUnaryEqualsIsTabMatch(t *testing.T) {
	in := New()
	// =s moves past the matched prefix and yields it.
	expect(t, in, `"hello world" ? { ="hello"; move(1); tab(0) }`, `"world"`)
	expect(t, in, `"abc" ? ="xyz"`) // no match: fails
	// Reversible: when the whole sequence is drained, resumption undoes
	// both matches (pos back to 1) before the alternation falls through to
	// tab(0) — so the second result sees the untouched subject.
	expect(t, in, `"aab" ? { (="a" & ="ab") | tab(0) }`, `"ab"`, `"aab"`)
	// Bounded (one result), the backtracking alternative never runs.
	expect(t, in, `("aab" ? { (="a" & ="ab") | tab(0) }) \ 1`, `"ab"`)
}
