package interp

import (
	"fmt"

	"junicon/internal/ast"
	"junicon/internal/checkpoint"
	"junicon/internal/core"
	"junicon/internal/parser"
	"junicon/internal/transform"
	"junicon/internal/vm"
)

// Snapshot restore: the interpreter half of durable generators. A
// checkpoint blob records the expression its frame compiled from plus the
// names of every compiled procedure live in its call tower; restoring
// recompiles the expression in this interpreter (whose procedures must
// already be loaded — meta.Program is the caller's responsibility) and
// rehydrates the frame against the resulting Machine.

// ProcMachine returns the compiled Machine for a loaded procedure — the
// resolver checkpoint.Restore uses for child frames in a call tower.
func (in *Interp) ProcMachine(name string) (*vm.Machine, bool) {
	m, ok := in.vmMachines[name]
	return m, ok
}

// ExprMachine compiles a top-level expression to its Machine without
// instantiating a frame — the restore path's counterpart of EvalGen's
// compileEval. It follows the same pipeline (parse, normalize, facts when
// optimizing) so the compiled unit is bytecode-identical to the one the
// snapshot was captured from.
func (in *Interp) ExprMachine(src string) (*vm.Machine, error) {
	e, err := parser.ParseExpression(src)
	if err != nil {
		return nil, err
	}
	norm := transform.Normalize(e)
	if in.optimize {
		if in.facts != nil {
			in.facts.ExtendExpr(norm, in.factsOptions())
		} else {
			in.refreshFacts([]ast.Node{norm})
		}
	}
	return vm.CompileExpr(norm, in.compileEnv(true))
}

// RestoreSnapshot rebuilds a generator from a checkpoint blob, resuming
// mid-iteration. The caller loads meta.Program (if any) first —
// RestoreSnapshot only recompiles meta.Expr and rehydrates. Compiled
// execution is forced on: a snapshot only restores into a vm frame.
func (in *Interp) RestoreSnapshot(data []byte) (core.Gen, *checkpoint.Meta, error) {
	meta, err := checkpoint.Peek(data)
	if err != nil {
		return nil, nil, err
	}
	if meta.Expr == "" {
		return nil, nil, fmt.Errorf("interp: snapshot of %q has no source expression to restore from", meta.Name)
	}
	if !in.vm {
		in.SetVM(true)
	}
	m, err := in.ExprMachine(meta.Expr)
	if err != nil {
		return nil, nil, fmt.Errorf("interp: restore: recompile %q: %w", meta.Expr, err)
	}
	fr, meta, err := checkpoint.Restore(data, m, in.ProcMachine)
	if err != nil {
		return nil, nil, err
	}
	return fr, meta, nil
}
