package interp

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateDis = flag.Bool("update-dis", false, "rewrite disassembly golden files from current compiler output")

// TestDisassemblyGolden pins the bytecode compiler's output shape over two
// real testdata programs: the listing (slot tables, resume points, symbolic
// operands) is the compiler's public face, and drift in it means the
// lowering changed. Regenerate with `go test ./internal/interp -run
// Disassembly -update-dis` after an intentional change.
func TestDisassemblyGolden(t *testing.T) {
	for _, name := range []string{"quickstart", "queens"} {
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", "dis", name+".jn"))
			if err != nil {
				// Source fixtures live beside the goldens, copied from the
				// repo-level testdata so the listing stays hermetic.
				t.Fatalf("fixture: %v", err)
			}
			in := New(WithOutput(io.Discard), WithVM())
			var b strings.Builder
			if err := in.DisassembleProgram(string(src), &b); err != nil {
				t.Fatalf("disassemble: %v", err)
			}
			got := b.String()
			goldenPath := filepath.Join("testdata", "dis", name+".golden")
			if *updateDis {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("golden (run with -update-dis to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("disassembly drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestDisassemblyCoversCompiledUnits asserts the listing marks fallback
// units explicitly rather than omitting them.
func TestDisassemblyCoversCompiledUnits(t *testing.T) {
	in := New(WithOutput(io.Discard), WithVM())
	var b strings.Builder
	err := in.DisassembleProgram(`
def ok(n) { return n + 1; }
def scans(s) { return s ? tab(upto("x")); }
`, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "unit ok") {
		t.Errorf("compiled unit missing from listing:\n%s", out)
	}
	if !strings.Contains(out, "not compiled:") || !strings.Contains(out, "tree-walk fallback") {
		t.Errorf("fallback unit not marked in listing:\n%s", out)
	}
}
