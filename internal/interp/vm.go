package interp

import (
	"fmt"
	"io"
	"strings"

	"junicon/internal/ast"
	"junicon/internal/compile"
	"junicon/internal/core"
	"junicon/internal/parser"
	"junicon/internal/transform"
	"junicon/internal/value"
	"junicon/internal/vm"
)

// WithVM enables bytecode-compiled execution: loaded procedures and
// evaluated expressions are lowered to the compile package's bytecode and
// driven in slot-based resumable frames (the vm package); any unit the
// compiler cannot lower transparently falls back to the tree walk, so
// compiled execution is a pure optimization, never a semantic fork.
func WithVM() Option { return func(in *Interp) { in.vm = true } }

// SetVM toggles compiled execution at run time (the REPL's :vm command).
// Turning it on compiles every procedure loaded so far; turning it off
// reverts calls to the tree walk (compiled code stays cached for the next
// toggle).
func (in *Interp) SetVM(on bool) {
	in.vm = on
	if on {
		in.refreshFacts(nil)
		for _, d := range in.decls {
			switch x := d.(type) {
			case *ast.ProcDecl:
				in.compileProc(x)
			case *ast.ClassDecl:
				for _, m := range x.Methods {
					in.compileProc(m)
				}
			}
		}
	}
}

// VMEnabled reports whether compiled execution is on.
func (in *Interp) VMEnabled() bool { return in.vm }

// compileEnv builds the compiler's name-resolution environment over this
// interpreter: the same resolution order the tree walk uses at generator
// construction (globals, then builtins, then natives), frozen at compile
// time. topLevel additionally grants the auto-create-global rule for
// unknown names (REPL persistence); procedure mode leaves them to the
// compiler's default-local handling.
func (in *Interp) compileEnv(topLevel bool) compile.Env {
	env := compile.Env{
		LookupGlobal: func(name string) (*value.Var, bool) {
			return in.globals.Lookup(name)
		},
		LookupConst: func(name string) (value.V, bool) {
			if b, ok := in.builtins[name]; ok {
				return b, true
			}
			if n, ok := in.natives[name]; ok {
				return n, true
			}
			return nil, false
		},
		Native: func(name string) (*value.Native, bool) {
			n, ok := in.natives[name]
			return n, ok
		},
		CallDirect: func(name string) bool {
			if in.facts == nil {
				return false
			}
			pf, ok := in.facts.Proc(name)
			return ok && pf.Effects.Fusable() && pf.Yields.AtMost(1)
		},
	}
	if topLevel {
		env.DefineGlobal = func(name string) *value.Var {
			if cell, ok := in.globals.Lookup(name); ok {
				return cell
			}
			return in.globals.Define(name, value.NullV)
		}
	}
	return env
}

// compileProcs lowers every procedure in decls, after the whole batch has
// been defined — two-phase loading, so mutually recursive procedures see
// each other's global cells at compile time.
func (in *Interp) compileProcs(decls []ast.Node) {
	for _, d := range decls {
		switch x := d.(type) {
		case *ast.ProcDecl:
			in.compileProc(x)
		case *ast.ClassDecl:
			for _, m := range x.Methods {
				in.compileProc(m)
			}
		}
	}
}

// compileProc lowers one loaded procedure and, on success, swaps the
// global's value for a dispatching wrapper: calls run the compiled frame
// when the vm is on and tracing is off, and the original tree-walk closure
// otherwise. The global cell is reused, so call sites — including compiled
// ones holding the cell — observe the swap; the vm's call-site cache keys
// on procedure identity, so it re-arms automatically.
func (in *Interp) compileProc(d *ast.ProcDecl) {
	if in.vmCompiled[d] {
		return
	}
	cell, ok := in.globals.Lookup(d.Name)
	if !ok {
		return
	}
	orig, ok := cell.Get().(*value.Proc)
	if !ok {
		return
	}
	m, err := vm.CompileProc(d, in.compileEnv(false))
	if err != nil {
		return // tree walk only: the compiler is deliberately partial
	}
	if in.vmCompiled == nil {
		in.vmCompiled = map[*ast.ProcDecl]bool{}
	}
	in.vmCompiled[d] = true
	if in.vmMachines == nil {
		in.vmMachines = map[string]*vm.Machine{}
	}
	in.vmMachines[m.Code().Name] = m
	cell.Set(value.NewProc(orig.Name, orig.Arity, func(args ...value.V) core.Gen {
		if in.vm && in.tracer == nil {
			return m.NewFrame(args...)
		}
		return orig.Fn(args...)
	}))
}

// compileEval lowers a normalized top-level expression, returning nil when
// the unit does not compile (the caller falls back to the tree walk).
func (in *Interp) compileEval(norm ast.Node) core.Gen {
	if !in.vm || in.tracer != nil {
		return nil
	}
	m, err := vm.CompileExpr(norm, in.compileEnv(true))
	if err != nil {
		return nil
	}
	return m.NewFrame()
}

// DisassembleProgram parses and normalizes src, compiles every procedure
// and top-level statement, and writes the bytecode listings to w. Units
// the compiler cannot lower are listed with the reason they fall back.
func (in *Interp) DisassembleProgram(src string, w io.Writer) error {
	prog, err := parser.ParseProgram(src)
	if err != nil {
		return err
	}
	norm := transform.Normalize(prog).(*ast.Program)
	// Define the declarations so cross-references resolve like a real load
	// (constructors for records, cells for globals and procedures).
	if err := core.Protect(func() {
		for _, d := range norm.Decls {
			switch d.(type) {
			case *ast.ProcDecl, *ast.RecordDecl, *ast.GlobalDecl, *ast.ClassDecl:
				in.loadDecl(d)
			}
		}
	}); err != nil {
		return err
	}
	in.refreshFacts(norm.Decls)
	stmtN := 0
	for _, d := range norm.Decls {
		switch x := d.(type) {
		case *ast.ProcDecl:
			in.disUnit(w, "procedure "+x.Name, func() (*compile.Code, error) {
				return compile.Proc(x, in.compileEnv(false))
			})
		case *ast.ClassDecl:
			for _, m := range x.Methods {
				mm := m
				in.disUnit(w, "method "+x.Name+"."+m.Name, func() (*compile.Code, error) {
					return compile.Proc(mm, in.compileEnv(false))
				})
			}
		case *ast.RecordDecl, *ast.GlobalDecl:
			// No code of their own.
		default:
			stmtN++
			in.disUnit(w, fmt.Sprintf("statement %d", stmtN), func() (*compile.Code, error) {
				return compile.Expr(d, in.compileEnv(true))
			})
		}
	}
	return nil
}

// DisassembleExpr compiles one expression and writes its listing to w.
func (in *Interp) DisassembleExpr(src string, w io.Writer) error {
	e, err := parser.ParseExpression(src)
	if err != nil {
		return err
	}
	norm := transform.Normalize(e)
	if in.optimize || in.vm {
		in.refreshFacts([]ast.Node{norm})
	}
	code, err := compile.Expr(norm, in.compileEnv(true))
	if err != nil {
		return err
	}
	_, werr := io.WriteString(w, code.Disassemble())
	return werr
}

func (in *Interp) disUnit(w io.Writer, title string, f func() (*compile.Code, error)) {
	fmt.Fprintf(w, "-- %s\n", title)
	code, err := f()
	if err != nil {
		reason := err.Error()
		if u, ok := err.(*compile.Unsupported); ok {
			reason = u.Reason + " (tree-walk fallback)"
		}
		fmt.Fprintf(w, "   not compiled: %s\n\n", reason)
		return
	}
	listing := code.Disassemble()
	fmt.Fprint(w, listing)
	if !strings.HasSuffix(listing, "\n") {
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
