package interp

import (
	"bytes"
	"fmt"
	"math/big"
	mathrand "math/rand"
	"strings"
	"testing"

	"junicon/internal/core"
	"junicon/internal/value"
)

func evalAll(t *testing.T, in *Interp, src string) []string {
	t.Helper()
	vs, err := in.Eval(src, 10000)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = value.Image(v)
	}
	return out
}

func expect(t *testing.T, in *Interp, src string, want ...string) {
	t.Helper()
	got := evalAll(t, in, src)
	if len(got) != len(want) {
		t.Fatalf("%s => %v, want %v", src, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s => %v, want %v", src, got, want)
		}
	}
}

func TestArithmeticAndSequences(t *testing.T) {
	in := New()
	expect(t, in, "1 + 2", "3")
	expect(t, in, "2 ^ 10", "1024")
	expect(t, in, "1 to 4", "1", "2", "3", "4")
	expect(t, in, "10 to 1 by -4", "10", "6", "2")
	expect(t, in, "(1 to 2) + (10 | 20)", "11", "21", "12", "22")
	expect(t, in, `"abc" || "def"`, `"abcdef"`)
}

func TestGoalDirectedComparisonSearch(t *testing.T) {
	in := New()
	// (1 to 5) > 3 succeeds twice, yielding the right operand.
	expect(t, in, "(1 to 5) > 3", "3", "3")
	// Both operands searched: (1 to 10) > (8 to 9) succeeds for the pairs
	// (9,8), (10,8), (10,9).
	expect(t, in, "(1 to 10) > (8 to 9)", "8", "8", "9")
	expect(t, in, "2 > 3") // fails: empty
}

func TestPrimeMultiplesPaperExample(t *testing.T) {
	// §2A: (1 to 2) * isprime(4 to 7) produces 5, 7, 10, 14.
	// = aliases := in Junicon (see parser doc), so the primality test is
	// phrased with ~= (numeric inequality).
	in2 := New()
	if err := in2.LoadProgram(`
def isprime(n) {
  if n < 2 then fail;
  every d := 2 to n-1 do { if not (n % d ~= 0) then fail };
  return n;
}
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in2, "(1 to 2) * isprime(4 to 7)", "5", "7", "10", "14")
}

func TestPrimeMultiplesViaProductForm(t *testing.T) {
	// The explicit iterator-product form from §2A:
	// i := (1 to 2) & j := (4 to 7) & isprime(j) & i*j
	in := New()
	if err := in.LoadProgram(`
def isprime(n) {
  if n < 2 then fail;
  every d := 2 to n-1 do { if not (n % d ~= 0) then fail };
  return n;
}
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "(i := (1 to 2)) & (j := (4 to 7)) & isprime(j) & i*j",
		"5", "7", "10", "14")
}

func TestOrderDiffersBetweenForms(t *testing.T) {
	// The operand-search form and the explicit bound-product form
	// enumerate the same combinations with equal cardinality.
	in := New()
	if err := in.LoadProgram(`def pass(n) { if n > 5 then return n; }`); err != nil {
		t.Fatal(err)
	}
	a := evalAll(t, in, "(1 to 2) * pass(4 to 7)")
	b := evalAll(t, in, "(i := (1 to 2)) & (j := (4 to 7)) & pass(j) & i*j")
	if len(a) != len(b) {
		t.Fatalf("cardinality differs: %v vs %v", a, b)
	}
}

func TestSuspendGeneratorFunction(t *testing.T) {
	in := New()
	if err := in.LoadProgram(`
def firsts(n) {
  suspend 1 to n;
}
def countdown(n) {
  while n > 0 do {
    suspend n;
    n := n - 1;
  };
}
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "firsts(3)", "1", "2", "3")
	expect(t, in, "countdown(3)", "3", "2", "1")
}

func TestSuspendInsideNestedControl(t *testing.T) {
	// Figure 4's chunk(): suspend inside if inside while.
	in := New()
	if err := in.LoadProgram(`
def pieces(n) {
  i := 0;
  while i < n do {
    i := i + 1;
    if i % 2 ~= 1 then { suspend i; };
  };
}
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "pieces(6)", "2", "4", "6")
}

func TestReturnFailSemantics(t *testing.T) {
	in := New()
	if err := in.LoadProgram(`
def pick(x) {
  if x > 0 then return x;
  fail;
}
def nothing() { fail; }
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "pick(5)", "5")
	expect(t, in, "pick(-1)")
	expect(t, in, "nothing()")
	// return is not resumable: one result only.
	expect(t, in, "pick(3) | pick(4)", "3", "4")
}

func TestEveryBreakNext(t *testing.T) {
	in := New()
	if err := in.LoadProgram(`
def collect() {
  acc := [];
  every i := 1 to 10 do {
    if i === 4 then next;
    if i > 6 then break;
    put(acc, i);
  };
  return acc;
}
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "collect()", "[1,2,3,5,6]")
}

func TestWhileLoopAccumulation(t *testing.T) {
	in := New()
	expect(t, in, "{ s := 0; i := 0; while i < 5 do { i +:= 1; s +:= i }; s }", "15")
}

func TestStringBuiltinsAreGenerators(t *testing.T) {
	in := New()
	expect(t, in, `find("ab", "abcabc")`, "1", "4")
	expect(t, in, `upto('aeiou', "stream")`, "4", "5")
	expect(t, in, `!"abc"`, `"a"`, `"b"`, `"c"`)
	expect(t, in, `reverse("abc")`, `"cba"`)
}

func TestListsTablesRecords(t *testing.T) {
	in := New()
	expect(t, in, "{ l := [1,2,3]; l[2] := 99; l }", "[1,99,3]")
	expect(t, in, "{ t := table(0); t[\"k\"] := 5; t[\"k\"] + t[\"missing\"] }", "5")
	if err := in.LoadProgram("record point(x, y)"); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "{ p := point(1, 2); p.y := 9; p.x + p.y }", "10")
	expect(t, in, "*[1,2,3]", "3")
	expect(t, in, "![10,20]", "10", "20")
}

func TestEveryBangAssignsElements(t *testing.T) {
	in := New()
	expect(t, in, "{ l := [1,2,3]; every !l := 0; l }", "[0,0,0]")
}

func TestWriteOutput(t *testing.T) {
	var buf bytes.Buffer
	in := New(WithOutput(&buf))
	if _, err := in.Eval(`write("hello ", 42)`, 1); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "hello 42\n" {
		t.Fatalf("output = %q", buf.String())
	}
}

func TestFirstClassGeneratorCalculus(t *testing.T) {
	in := New()
	// <>e, @c, !c from Figure 1.
	expect(t, in, "{ c := <>(1 to 3); @c }", "1")
	expect(t, in, "{ c := <>(1 to 3); @c; !c }", "2", "3")
	expect(t, in, "{ c := <>(1 to 2); @c; @c; @c }") // exhausted → fail
	expect(t, in, "{ c := <>(1 to 2); @c; c := ^c; !c }", "1", "2")
	expect(t, in, "{ c := <>(1 to 3); @c; @c; *c }", "2")
}

func TestCoExpressionShadowing(t *testing.T) {
	in := New()
	// |<>e copies referenced locals at creation.
	expect(t, in, "{ x := 5; c := |<>(x + 1); x := 100; @c }", "6")
	// Refresh restores the creation-time snapshot.
	expect(t, in, "{ x := 1; c := |<>(x +:= 10); @c; c := ^c; @c }", "11")
}

func TestPipeProducesInParallel(t *testing.T) {
	in := New()
	expect(t, in, "!(|> (1 to 5))", "1", "2", "3", "4", "5")
	// Pipeline: stage feeding a surrounding expression.
	expect(t, in, "2 * !(|> (1 to 3))", "2", "4", "6")
}

func TestPipelineOfPipes(t *testing.T) {
	// x * !|>f(!|>g(y)) — the §3B two-stage pipeline, with squares and
	// increments as the stages.
	in := New()
	if err := in.LoadProgram(`
def sq(x) { return x * x; }
def inc(x) { return x + 1; }
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "10 * !(|> inc(!(|> sq(1 to 4))))", "20", "50", "100", "170")
}

func TestTransmissionIntoCoExpression(t *testing.T) {
	in := New()
	// x @ c transmits x; our co-expressions ignore untargeted transmission
	// but the activation still steps.
	expect(t, in, "{ c := <>(1 to 3); 99 @ c; @c }", "2")
}

func TestNativeInvocation(t *testing.T) {
	in := New()
	in.RegisterNative("wordToNumber", func(args ...value.V) (value.V, error) {
		s, ok := value.ToString(args[0])
		if !ok {
			return nil, fmt.Errorf("string expected")
		}
		n, ok := new(big.Int).SetString(strings.ToLower(string(s)), 36)
		if !ok {
			return nil, nil // native failure
		}
		return value.NewBig(n), nil
	})
	expect(t, in, `this::wordToNumber("10")`, "36")
	expect(t, in, `this::wordToNumber("zz")`, "1295")
	// Native failure is goal-directed failure.
	expect(t, in, `this::wordToNumber("!!!")`)
	// Receiver form passes the receiver as first argument.
	expect(t, in, `"10"::wordToNumber()`, "36")
}

func TestUnregisteredNativeRaises(t *testing.T) {
	in := New()
	if _, err := in.Eval("this::nosuch(1)", 1); err == nil {
		t.Fatal("unregistered native should error")
	}
}

func TestNullTests(t *testing.T) {
	in := New()
	expect(t, in, "/x", "&null")          // x is auto-created null
	expect(t, in, "{ y := 5; \\y }", "5") // non-null test yields value
	expect(t, in, "{ y := 5; /y }")       // fails
	expect(t, in, "not (1 > 2)", "&null")
	expect(t, in, "not (1 < 2)")
}

func TestCaseExpression(t *testing.T) {
	in := New()
	expect(t, in, `case 2 of { 1: "one"; 2 | 3: "few"; default: "many" }`, `"few"`)
	expect(t, in, `case 9 of { 1: "one"; default: "many" }`, `"many"`)
	expect(t, in, `case 9 of { 1: "one" }`) // no match, no default: fails
}

func TestAlternationOfCalls(t *testing.T) {
	in := New()
	if err := in.LoadProgram(`
def f(x) { return x + 100; }
def g(x) { return x + 200; }
`); err != nil {
		t.Fatal(err)
	}
	// (f | g)(1) ≡ f(1) | g(1) (§2A).
	expect(t, in, "(f | g)(1)", "101", "201")
}

func TestRepeatedAlternation(t *testing.T) {
	in := New()
	expect(t, in, "(|(1 to 2)) \\ 5", "1", "2", "1", "2", "1")
}

func TestLimitOperator(t *testing.T) {
	in := New()
	expect(t, in, "(1 to 100) \\ 3", "1", "2", "3")
}

func TestReversibleAssignment(t *testing.T) {
	in := New()
	// (x <- 3) & x > 99 fails and restores x.
	expect(t, in, "{ x := 1; (x <- 3) & (x > 99) }")
	expect(t, in, "{ x := 1; ((x <- 3) & (x > 99)) | x }", "1")
}

func TestSwap(t *testing.T) {
	in := New()
	expect(t, in, "{ a := 1; b := 2; a :=: b; [a, b] }", "[2,1]")
}

func TestRecordsInsideGenerators(t *testing.T) {
	in := New()
	if err := in.LoadProgram("record pair(a, b)"); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "{ p := pair(1, 2); !p }", "1", "2")
}

func TestGlobalsAcrossEvals(t *testing.T) {
	in := New()
	if err := in.LoadProgram("global counter\ncounter := 0"); err != nil {
		t.Fatal(err)
	}
	evalAll(t, in, "counter +:= 1")
	evalAll(t, in, "counter +:= 1")
	expect(t, in, "counter", "2")
}

func TestMutualEvaluationIntegerInvocation(t *testing.T) {
	in := New()
	expect(t, in, "2(10, 20, 30)", "20")
}

func TestRuntimeErrorsBecomeGoErrors(t *testing.T) {
	in := New()
	if _, err := in.Eval("1 / 0", 1); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
	if _, err := in.Eval("[1] + 2", 1); err == nil {
		t.Fatal("type error should surface")
	}
}

func TestParseErrorSurfaces(t *testing.T) {
	in := New()
	if _, err := in.Eval("f(", 1); err == nil {
		t.Fatal("parse error should surface")
	}
	if err := in.LoadProgram("def f( {}"); err == nil {
		t.Fatal("program parse error should surface")
	}
}

func TestChunkProgramFromFigure4(t *testing.T) {
	// The chunk generator of Figure 4, interpreted end to end.
	in := New()
	if err := in.LoadProgram(`
global chunkSize
chunkSize := 4
def chunk(e) {
  c := [];
  while put(c, @e) do {
    if (*c >= chunkSize) then { suspend c; c := []; }};
  if (*c > 0) then { return c; };
}
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "chunk(<>(1 to 10))", "[1,2,3,4]", "[5,6,7,8]", "[9,10]")
}

func TestEvalFirstAndGen(t *testing.T) {
	in := New()
	v, ok, err := in.EvalFirst("5 + 5")
	if err != nil || !ok || value.Image(v) != "10" {
		t.Fatalf("EvalFirst: %v %v %v", v, ok, err)
	}
	_, ok, err = in.EvalFirst("1 > 2")
	if err != nil || ok {
		t.Fatalf("failure expected: %v %v", ok, err)
	}
	g, err := in.EvalGen("1 to 3")
	if err != nil {
		t.Fatal(err)
	}
	if n := core.Count(g); n != 3 {
		t.Fatalf("count = %d", n)
	}
}

func TestProcedureTracing(t *testing.T) {
	var trace bytes.Buffer
	in := New()
	if err := in.LoadProgram(`
def half(n) {
  if n % 2 ~= 0 then fail;
  return n / 2;
}
`); err != nil {
		t.Fatal(err)
	}
	in.EnableTrace(&trace)
	expect(t, in, "half(3 to 6)", "2", "3")
	out := trace.String()
	for _, want := range []string{
		"half(3)", "half failed",
		"half(4)", "half returned 2",
		"half(5)", "half(6)", "half returned 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	in.DisableTrace()
	trace.Reset()
	expect(t, in, "half(4)", "2")
	if trace.Len() != 0 {
		t.Fatalf("trace after disable: %q", trace.String())
	}
}

func TestTracedGeneratorEvents(t *testing.T) {
	var events []string
	g := core.Traced("range", core.IntRange(1, 2), func(label string, ev core.Event, v value.V) {
		s := label + ":" + ev.String()
		if v != nil {
			s += ":" + value.Image(v)
		}
		events = append(events, s)
	})
	core.Drain(g, 0)
	g.Restart()
	want := []string{
		"range:resume", "range:yield:1",
		"range:resume", "range:yield:2",
		"range:resume", "range:fail",
		"range:restart",
	}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v", events)
		}
	}
}

func TestEverySuspendIdiom(t *testing.T) {
	in := New()
	if err := in.LoadProgram(`
def firstsquares(n) {
  every suspend (1 to n) ^ 2;
}
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "firstsquares(4)", "1", "4", "9", "16")
}

// TestNQueens runs the classic goal-directed backtracking benchmark: the
// recursive generator place() suspends complete placements and undoes its
// board mutations on resumption, so draining it enumerates every solution.
func TestNQueens(t *testing.T) {
	in := New()
	if err := in.LoadProgram(`
global rows, up, down, q

def place(c, n) {
  if c > n then return copy(q);
  every r := 1 to n do {
    if /rows[r] then if /up[n+r-c] then if /down[r+c-1] then {
      rows[r] := 1; up[n+r-c] := 1; down[r+c-1] := 1; q[c] := r;
      suspend place(c+1, n);
      rows[r] := &null; up[n+r-c] := &null; down[r+c-1] := &null;
    };
  };
}

def queens(n) {
  rows := list(n); up := list(2*n-1); down := list(2*n-1); q := list(n);
  suspend place(1, n);
}
`); err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{4: 2, 5: 10, 6: 4}
	for n, want := range counts {
		vs, err := in.Eval(fmt.Sprintf("queens(%d)", n), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != want {
			t.Fatalf("queens(%d) found %d solutions, want %d", n, len(vs), want)
		}
	}
	// Spot-check one 4-queens solution is a valid permutation.
	vs, _ := in.Eval("queens(4)", 1)
	sol := vs[0].(*value.List)
	seen := map[string]bool{}
	for _, e := range sol.Elems() {
		seen[value.Image(e)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("solution not a permutation: %s", sol.Image())
	}
}

func TestClassDeclFlattensInInterpreter(t *testing.T) {
	in := New()
	if err := in.LoadProgram(`
class Acc(total) {
  def add(x) { total := total + x; return total; }
}
total := 0
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "add(5)", "5")
	expect(t, in, "add(3)", "8")
	expect(t, in, "total", "8")
}

func TestEvalNeverPanicsOnFragmentSoup(t *testing.T) {
	// Evaluation of arbitrary (parseable) expressions must surface errors,
	// never panic. Uses bounded evaluation since random expressions can be
	// infinite generators.
	// NOTE: repeated alternation (prefix |) is deliberately absent — |e
	// makes infinite result sequences, and a product like `|1 & /1` is a
	// legitimately non-terminating search (as in Icon itself).
	frags := []string{
		"1", "x", `"s"`, "[1]", "f", "(", ")", "+", "*", ":=", "&",
		"!", "@", "^", "\\", "?", "to", " ", "&null", "table(0)", "/",
	}
	rng := newRand(13)
	for i := 0; i < 800; i++ {
		var b strings.Builder
		n := 1 + rng.Intn(12)
		for j := 0; j < n; j++ {
			b.WriteString(frags[rng.Intn(len(frags))])
		}
		src := b.String()
		in := New(WithOutput(discard{}))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = in.Eval(src, 50)
		}()
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func newRand(seed int64) *mathrand.Rand { return mathrand.New(mathrand.NewSource(seed)) }

func TestStaticVariablesPersistAcrossCalls(t *testing.T) {
	in := New()
	if err := in.LoadProgram(`
def counter() {
  static n;
  initial n := 100;
  n +:= 1;
  return n;
}
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "counter()", "101")
	expect(t, in, "counter()", "102")
	expect(t, in, "counter()", "103")
}

func TestInitialRunsOncePerProcedure(t *testing.T) {
	var buf bytes.Buffer
	in := New(WithOutput(&buf))
	if err := in.LoadProgram(`
def hello(x) {
  initial write("setup");
  return x;
}
`); err != nil {
		t.Fatal(err)
	}
	evalAll(t, in, "hello(1)")
	evalAll(t, in, "hello(2)")
	if got := strings.Count(buf.String(), "setup"); got != 1 {
		t.Fatalf("initial ran %d times", got)
	}
}

func TestStaticWithInitializerExpression(t *testing.T) {
	in := New()
	if err := in.LoadProgram(`
def memo() {
  static cache := table(0);
  cache["hits"] +:= 1;
  return cache["hits"];
}
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "memo()", "1")
	expect(t, in, "memo()", "2")
}

func TestListConstructorSearchesOperands(t *testing.T) {
	// Like every operation, [e1, e2] searches the operand product (§2A).
	in := New()
	expect(t, in, "[1 to 2, 5]", "[1,5]", "[2,5]")
	expect(t, in, "[1, 2 | 3]", "[1,2]", "[1,3]")
	// Failing element fails the constructor.
	expect(t, in, "[1, 2 > 3]")
}

func TestInterpAPICorners(t *testing.T) {
	in := New()
	// Global on missing name.
	if _, ok := in.Global("nope"); ok {
		t.Fatal("missing global should report !ok")
	}
	// Top-level var declaration executes at load.
	if err := in.LoadProgram("var greeting := \"hi\""); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "greeting", `"hi"`)
	// EvalRawGen surfaces parse errors.
	if _, err := in.EvalRawGen("f("); err == nil {
		t.Fatal("raw parse error should surface")
	}
	// Unknown &keyword raises at construction.
	if _, err := in.EvalGen("&bogus"); err == nil {
		t.Fatal("unknown keyword should error")
	}
	// Record constructors ignore extra arguments, pad missing ones.
	if err := in.LoadProgram("record pt(x, y)"); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "pt(1, 2, 3).x", "1")
	expect(t, in, "{ p := pt(1); /p.y }", "&null")
	// Builtins are not assignable.
	if _, err := in.Eval("write := 1", 1); err == nil {
		t.Fatal("assigning a builtin should raise")
	}
}

func TestSuspendWithDoClause(t *testing.T) {
	var buf bytes.Buffer
	in := New(WithOutput(&buf))
	if err := in.LoadProgram(`
def g() {
  suspend 1 to 3 do write("resumed");
}
`); err != nil {
		t.Fatal(err)
	}
	expect(t, in, "g()", "1", "2", "3")
	// The do-clause runs after each resumption (between results), i.e.
	// after results 1, 2 and 3 are consumed and the generator re-entered.
	if got := strings.Count(buf.String(), "resumed"); got < 2 {
		t.Fatalf("do clause ran %d times", got)
	}
}
