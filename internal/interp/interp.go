// Package interp is the tree-walking evaluator of the embedding pipeline:
// it runs (raw or normalized) Junicon syntax trees directly against the
// goal-directed kernel — the interactive path that in the paper executes on
// a Groovy script engine (§6), here executing on the core package.
//
// It also hosts the interoperability registry: Go functions registered as
// natives are invoked with the :: syntax of §4, and their results are
// promoted to singleton iterators so they participate in goal-directed
// evaluation seamlessly.
package interp

import (
	"fmt"
	"io"
	"os"

	"junicon/internal/analyze"
	"junicon/internal/ast"
	"junicon/internal/core"
	"junicon/internal/parser"
	"junicon/internal/transform"
	"junicon/internal/value"
	"junicon/internal/vm"
)

// Env is a lexical scope chain of reified variables.
type Env struct {
	vars   map[string]*value.Var
	parent *Env
}

// NewEnv returns a scope nested in parent (parent may be nil).
func NewEnv(parent *Env) *Env {
	return &Env{vars: map[string]*value.Var{}, parent: parent}
}

// Lookup finds name in the scope chain.
func (e *Env) Lookup(name string) (*value.Var, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Define creates (or replaces) name in this scope.
func (e *Env) Define(name string, v value.V) *value.Var {
	cell := value.NewCell(value.Deref(v))
	e.vars[name] = cell
	return cell
}

// Interp is an interpreter instance: global scope, builtin library and
// native registry.
type Interp struct {
	globals  *Env
	builtins map[string]value.V
	natives  map[string]*value.Native
	scan     *core.ScanHolder
	tracer   *core.Tracer
	out      io.Writer

	// Facts-driven optimization (interprocedural analysis consumed by the
	// evaluator): when optimize is set, LoadProgram/EvalGen compute
	// whole-program facts over the normalized trees and eval fuses pure
	// ≤1-yield product prefixes, inlines pure pipes and sizes pipe buffers
	// from yield bounds. decls accumulates normalized declarations across
	// loads so facts stay interprocedural in the REPL.
	optimize bool
	facts    *analyze.Facts
	decls    []ast.Node

	// Compiled execution (the bytecode vm): when vm is set, loaded
	// procedures and evaluated expressions run as slot-framed bytecode
	// where the compiler supports them, falling back to the tree walk
	// where it does not. vmCompiled marks declarations already lowered so
	// SetVM re-toggles don't wrap wrappers.
	vm         bool
	vmCompiled map[*ast.ProcDecl]bool
	// vmMachines maps compiled-unit names to their Machines — the resolver
	// snapshot restore uses to rebuild call towers (checkpoint.Restore).
	vmMachines map[string]*vm.Machine
}

// Option configures an interpreter.
type Option func(*Interp)

// WithOutput directs write()/writes() output to w.
func WithOutput(w io.Writer) Option { return func(in *Interp) { in.out = w } }

// WithOptimize enables facts-driven evaluation: statically justified
// fusion, pipe inlining and buffer sizing. Semantically a no-op — the
// semtest Fused lane pins that traces are identical either way.
func WithOptimize() Option { return func(in *Interp) { in.optimize = true } }

// New returns an interpreter with the builtin library loaded.
func New(opts ...Option) *Interp {
	in := &Interp{out: os.Stdout, natives: map[string]*value.Native{}}
	for _, o := range opts {
		o(in)
	}
	in.globals = NewEnv(nil)
	in.builtins = core.Builtins(in.out)
	in.scan = core.NewScanHolder()
	scanLib := core.ScanBuiltins(in.scan)
	for k, v := range scanLib {
		in.builtins[k] = v
	}
	// The string analysis functions default their subject to &subject and
	// their start position to &pos when the subject argument is omitted or
	// null (Icon's convention inside scanning expressions).
	for name, atName := range map[string]string{
		"find": "findAt", "upto": "uptoAt", "many": "manyAt",
		"any": "anyAt", "match": "matchAt",
	} {
		base := in.builtins[name].(*value.Proc)
		at := scanLib[atName].(*value.Proc)
		in.builtins[name] = value.NewProc(name, -1, func(args ...value.V) core.Gen {
			if len(args) < 2 || value.IsNull(value.Deref(args[1])) {
				var first value.V = value.NullV
				if len(args) > 0 {
					first = args[0]
				}
				return at.Call(first)
			}
			return base.Call(args...)
		})
	}
	return in
}

// RegisterNative exposes a Go function to embedded code under the ::
// invocation syntax. When the call site has an explicit receiver
// (expr::name(args)), the receiver value is passed as the first argument;
// this::name(args) passes only the arguments. Returning (nil, nil) means
// failure; a non-nil error raises a runtime error.
func (in *Interp) RegisterNative(name string, fn func(args ...value.V) (value.V, error)) {
	in.natives[name] = value.NewNative(name, fn)
}

// EnableTrace turns on Icon-style procedure tracing (&trace): calls,
// suspensions, returns and failures are logged to w with call-depth
// prefixes — the program-monitoring hook of the paper's §9 future work.
func (in *Interp) EnableTrace(w io.Writer) { in.tracer = &core.Tracer{W: w} }

// DisableTrace turns procedure tracing off.
func (in *Interp) DisableTrace() { in.tracer = nil }

// Define binds a global variable.
func (in *Interp) Define(name string, v value.V) { in.globals.Define(name, v) }

// Global returns a global's current value.
func (in *Interp) Global(name string) (value.V, bool) {
	cell, ok := in.globals.Lookup(name)
	if !ok {
		return nil, false
	}
	return cell.Get(), true
}

// LoadProgram parses, normalizes and loads a Junicon program: declarations
// are defined and top-level statements executed in order (bounded, as at
// "the outermost level of interaction").
func (in *Interp) LoadProgram(src string) error {
	prog, err := parser.ParseProgram(src)
	if err != nil {
		return err
	}
	norm := transform.Normalize(prog).(*ast.Program)
	for _, d := range norm.Decls {
		switch d.(type) {
		case *ast.ProcDecl, *ast.ClassDecl, *ast.RecordDecl, *ast.GlobalDecl:
			in.decls = append(in.decls, d)
		}
	}
	if in.optimize || in.vm {
		in.refreshFacts(norm.Decls)
	}
	err = core.Protect(func() {
		for _, d := range norm.Decls {
			in.loadDecl(d)
		}
	})
	if err == nil && in.vm {
		// Second phase: every cell of the batch exists, so mutually
		// recursive procedures compile against each other's globals.
		in.compileProcs(norm.Decls)
	}
	return err
}

// refreshFacts recomputes whole-program facts over every declaration
// loaded so far plus the given extra nodes. Facts are keyed by node
// identity, so recomputation re-covers earlier declarations' trees (their
// procedure bodies are compiled lazily, at call time) and the extra nodes
// about to be evaluated. Diagnostics are discarded here — vet reporting
// is the REPL's and Vet's job, not the evaluator's.
func (in *Interp) refreshFacts(extra []ast.Node) {
	nodes := make([]ast.Node, 0, len(in.decls)+len(extra))
	nodes = append(nodes, in.decls...)
	for _, n := range extra {
		switch n.(type) {
		case *ast.ProcDecl, *ast.ClassDecl, *ast.RecordDecl, *ast.GlobalDecl:
			// already accumulated in in.decls
		default:
			nodes = append(nodes, n)
		}
	}
	p := &ast.Program{Decls: nodes}
	_, in.facts = analyze.ProgramFacts(p, in.factsOptions())
}

// factsOptions builds the analyze options for this interpreter: a name is
// known when it resolves in the global scope at analysis time.
func (in *Interp) factsOptions() analyze.Options {
	return analyze.Options{
		Known: func(name string) bool {
			_, ok := in.Global(name)
			return ok
		},
	}
}

func (in *Interp) loadDecl(d ast.Node) {
	switch x := d.(type) {
	case *ast.ProcDecl:
		in.globals.Define(x.Name, in.makeProc(x, in.globals))
	case *ast.RecordDecl:
		in.globals.Define(x.Name, recordConstructor(x))
	case *ast.GlobalDecl:
		for _, name := range x.Names {
			if _, ok := in.globals.Lookup(name); !ok {
				in.globals.Define(name, value.NullV)
			}
		}
	case *ast.ClassDecl:
		// Minimal class model: fields become globals, methods become
		// procedures (the paper's class-level embedding maps fields and
		// methods into the host class; interactively we flatten them).
		for _, f := range x.Fields {
			if _, ok := in.globals.Lookup(f); !ok {
				in.globals.Define(f, value.NullV)
			}
		}
		for _, m := range x.Methods {
			in.globals.Define(m.Name, in.makeProc(m, in.globals))
		}
	default:
		// Top-level statement: bounded evaluation.
		g := in.eval(d, in.globals)
		g.Next()
		g.Restart()
	}
}

// EvalGen parses src as one expression and returns its generator. The
// expression is normalized first, so evaluation exercises the §5A normal
// form.
func (in *Interp) EvalGen(src string) (core.Gen, error) {
	e, err := parser.ParseExpression(src)
	if err != nil {
		return nil, err
	}
	norm := transform.Normalize(e)
	if in.optimize {
		if in.facts != nil {
			// Declarations are unchanged since the last LoadProgram: the
			// interprocedural tables stay valid, so extend the node cache
			// with just this expression instead of re-running the fixpoint.
			in.facts.ExtendExpr(norm, in.factsOptions())
		} else {
			in.refreshFacts([]ast.Node{norm})
		}
	}
	if g := in.compileEval(norm); g != nil {
		return g, nil
	}
	var g core.Gen
	if err := core.Protect(func() { g = in.eval(norm, in.globals) }); err != nil {
		return nil, err
	}
	return g, nil
}

// EvalRawGen is EvalGen without normalization — used by the equivalence
// tests that pin raw and normalized evaluation to the same sequences.
func (in *Interp) EvalRawGen(src string) (core.Gen, error) {
	e, err := parser.ParseExpression(src)
	if err != nil {
		return nil, err
	}
	var g core.Gen
	if err := core.Protect(func() { g = in.eval(e, in.globals) }); err != nil {
		return nil, err
	}
	return g, nil
}

// Eval parses src as an expression and drains its result sequence (capped
// at max results; max <= 0 means unbounded).
func (in *Interp) Eval(src string, max int) ([]value.V, error) {
	g, err := in.EvalGen(src)
	if err != nil {
		return nil, err
	}
	var out []value.V
	err = core.Protect(func() { out = core.Drain(g, max) })
	return out, err
}

// EvalFirst parses src and returns its first result (ok == false on
// failure).
func (in *Interp) EvalFirst(src string) (value.V, bool, error) {
	g, err := in.EvalGen(src)
	if err != nil {
		return nil, false, err
	}
	var v value.V
	var ok bool
	err = core.Protect(func() { v, ok = core.First(g) })
	return v, ok, err
}

// resolve finds a name: scope chain, then builtins, then natives. Unknown
// names are auto-created as locals in the current scope, matching Icon's
// default-local rule.
func (in *Interp) resolve(name string, env *Env) *value.Var {
	if cell, ok := env.Lookup(name); ok {
		return cell
	}
	if b, ok := in.builtins[name]; ok {
		return value.NewVar(func() value.V { return b }, func(value.V) {
			value.Raise(value.ErrProcedure, "cannot assign to builtin "+name, nil)
		})
	}
	if n, ok := in.natives[name]; ok {
		return value.NewVar(func() value.V { return n }, func(value.V) {
			value.Raise(value.ErrProcedure, "cannot assign to native "+name, nil)
		})
	}
	return env.Define(name, value.NullV)
}

// recordConstructor builds the constructor procedure a record declaration
// introduces.
func recordConstructor(d *ast.RecordDecl) *value.Proc {
	fields := append([]string(nil), d.Fields...)
	name := d.Name
	return value.NewProc(name, len(fields), func(args ...value.V) core.Gen {
		vals := make([]value.V, len(args))
		for i, a := range args {
			vals[i] = value.Deref(a)
		}
		return core.Unit(value.NewRecord(name, fields, vals))
	})
}

func fmtPos(p ast.Pos) string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }
