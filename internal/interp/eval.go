package interp

import (
	"junicon/internal/ast"
	"junicon/internal/coexpr"
	"junicon/internal/core"
	"junicon/internal/pipe"
	"junicon/internal/value"
)

// eval compiles a syntax tree into a kernel generator. The same compiler
// accepts raw trees and §5A normal forms (FlatProduct / BindIn / TmpRef),
// which is how the tests establish that normalization preserves meaning.
// Translated code (the translate package) emits calls to exactly the same
// kernel constructors this compiler uses, so the two paths share one
// operational semantics.
func (in *Interp) eval(n ast.Node, env *Env) core.Gen {
	switch x := n.(type) {
	case nil:
		return core.Unit(value.NullV)

	// ----- literals and names -----
	case *ast.IntLit:
		i, ok := value.ToInteger(value.String(x.Text))
		if !ok {
			value.Raise(value.ErrInteger, "malformed integer literal at "+fmtPos(x.P), value.String(x.Text))
		}
		return core.Unit(i)
	case *ast.RealLit:
		r, ok := value.ToReal(value.String(x.Text))
		if !ok {
			value.Raise(value.ErrNumeric, "malformed real literal at "+fmtPos(x.P), value.String(x.Text))
		}
		return core.Unit(r)
	case *ast.StrLit:
		return core.Unit(value.String(x.Value))
	case *ast.CsetLit:
		return core.Unit(value.NewCset(x.Value))
	case *ast.Keyword:
		return in.keyword(x)
	case *ast.Ident:
		return core.Unit(in.resolve(x.Name, env))
	case *ast.TmpRef:
		return core.Unit(in.resolve(x.Name, env))
	case *ast.ListLit:
		elems := make([]core.Gen, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = in.eval(e, env)
		}
		return core.ListOf(elems...)

	// ----- normalized forms -----
	case *ast.FlatProduct:
		// Temporaries live at method level, exactly like Figure 5's
		// IconTmp declarations — no nested scope here, or assignments to
		// auto-created locals inside the product would be lost.
		terms := make([]core.Gen, len(x.Terms))
		for i, t := range x.Terms {
			terms[i] = in.eval(t, env)
		}
		// Facts-driven fusion: a statically pure ≤1-yield prefix is
		// evaluated once instead of being re-driven per backtrack cycle.
		if k := in.facts.FusablePrefix(x.Terms); k > 0 {
			return core.FusedProduct(terms[:k], core.Product(terms[k:]...))
		}
		return core.Product(terms...)
	case *ast.BindIn:
		cell := env.Define(x.Tmp, value.NullV)
		return core.In(cell, in.eval(x.E, env))

	// ----- operators -----
	case *ast.Binary:
		return in.binary(x, env)
	case *ast.Unary:
		return in.unary(x, env)
	case *ast.ToBy:
		var by core.Gen
		if x.By != nil {
			by = in.eval(x.By, env)
		}
		return core.ToBy(in.eval(x.Lo, env), in.eval(x.Hi, env), by)

	// ----- primaries -----
	case *ast.Call:
		fun := in.eval(x.Fun, env)
		args := make([]core.Gen, len(x.Args))
		for i, a := range x.Args {
			args[i] = in.eval(a, env)
		}
		return core.Invoke(fun, args...)
	case *ast.NativeCall:
		return in.nativeCall(x, env)
	case *ast.Index:
		return core.IndexGen(in.eval(x.X, env), in.eval(x.I, env))
	case *ast.Slice:
		return core.SectionGen(in.eval(x.X, env), in.eval(x.I, env), in.eval(x.J, env))
	case *ast.Field:
		return core.FieldGen(in.eval(x.X, env), x.Name)

	// ----- control -----
	case *ast.Block:
		// Icon has no block-level scoping: identifiers are procedure-wide,
		// so the compound shares the surrounding scope.
		if len(x.Stmts) == 0 {
			return core.Unit(value.NullV)
		}
		stmts := make([]core.Gen, len(x.Stmts))
		for i, s := range x.Stmts {
			stmts[i] = in.eval(s, env)
		}
		return core.Sequence(stmts...)
	case *ast.VarDecl:
		cells := make([]*value.Var, len(x.Names))
		inits := make([]core.Gen, len(x.Names))
		for i, name := range x.Names {
			cells[i] = env.Define(name, value.NullV)
			if x.Inits[i] != nil {
				inits[i] = in.eval(x.Inits[i], env)
			}
		}
		return core.Defer(func() core.Gen {
			for i, cell := range cells {
				if inits[i] == nil {
					cell.Set(value.NullV)
					continue
				}
				v, ok := core.First(inits[i])
				inits[i].Restart()
				if ok {
					cell.Set(v)
				} else {
					cell.Set(value.NullV)
				}
			}
			return core.Unit(value.NullV)
		})
	case *ast.If:
		var els core.Gen
		if x.Else != nil {
			els = in.eval(x.Else, env)
		}
		return core.IfThen(in.eval(x.Cond, env), in.eval(x.Then, env), els)
	case *ast.While:
		var body core.Gen
		if x.Body != nil {
			body = in.eval(x.Body, env)
		}
		if x.Until {
			return core.Until(in.eval(x.Cond, env), body)
		}
		return core.While(in.eval(x.Cond, env), body)
	case *ast.Every:
		var body core.Gen
		if x.Body != nil {
			body = in.eval(x.Body, env)
		}
		return core.Every(in.eval(x.E, env), body)
	case *ast.Repeat:
		return core.RepeatLoop(in.eval(x.Body, env))
	case *ast.Case:
		clauses := make([]core.CaseClause, 0, len(x.Clauses))
		var deflt core.Gen
		for _, c := range x.Clauses {
			if c.Sel == nil {
				deflt = in.eval(c.Body, env)
				continue
			}
			clauses = append(clauses, core.CaseClause{
				Sel:  in.eval(c.Sel, env),
				Body: in.eval(c.Body, env),
			})
		}
		return core.Case(in.eval(x.Subject, env), clauses, deflt)
	case *ast.Break:
		var e core.Gen
		if x.E != nil {
			e = in.eval(x.E, env)
		}
		return core.BreakGen(e)
	case *ast.NextStmt:
		return core.NextGen()
	case *ast.Fail:
		return core.Empty()

	// ----- procedure-body forms appearing in expression position -----
	case *ast.Return, *ast.Suspend:
		value.Raise(value.ErrProcedure,
			"return/suspend outside a procedure body at "+fmtPos(n.Pos()), nil)
	}
	value.Raise(value.ErrProcedure, "cannot evaluate node at "+fmtPos(n.Pos()), nil)
	panic("unreachable")
}

// keyword evaluates &-keywords.
func (in *Interp) keyword(k *ast.Keyword) core.Gen {
	switch k.Name {
	case "null":
		return core.Unit(value.NullV)
	case "fail":
		return core.Empty()
	case "lcase":
		return core.Unit(value.CsetLcase)
	case "ucase":
		return core.Unit(value.CsetUcase)
	case "digits":
		return core.Unit(value.CsetDigits)
	case "letters":
		return core.Unit(value.CsetLetters)
	case "subject":
		// &subject is an assignable keyword: assigning it establishes a new
		// subject and resets &pos to 1 (Icon semantics). Outside a scan it
		// reads as the empty string.
		scan := in.scan
		return core.Unit(value.NewVar(
			func() value.V {
				if st := scan.Current(); st != nil {
					return value.String(st.Subject)
				}
				return value.String("")
			},
			func(v value.V) {
				st := scan.Current()
				if st == nil {
					value.Raise(value.ErrString, "&subject assigned outside a scanning expression", nil)
				}
				st.Subject = string(value.MustString(v))
				st.Pos = 1
			},
		))
	case "pos":
		scan := in.scan
		return core.Unit(value.NewVar(
			func() value.V {
				if st := scan.Current(); st != nil {
					return value.NewInt(int64(st.Pos))
				}
				return value.NewInt(1)
			},
			func(v value.V) {
				st := scan.Current()
				if st == nil {
					value.Raise(value.ErrString, "&pos assigned outside a scanning expression", nil)
				}
				p := value.MustInt(v)
				if p <= 0 {
					p = len(st.Subject) + 1 + p
				}
				if p < 1 || p > len(st.Subject)+1 {
					value.Raise(value.ErrIndex, "&pos out of range", v)
				}
				st.Pos = p
			},
		))
	default:
		value.Raise(value.ErrProcedure, "unknown keyword &"+k.Name, nil)
	}
	panic("unreachable")
}

// productChain flattens the left spine of a surface product chain:
// `a & b & c` parses left-associative, so the terms sit down the L edges.
func productChain(x *ast.Binary) []ast.Node {
	if l, ok := x.L.(*ast.Binary); ok && l.Op == "&" {
		return append(productChain(l), x.R)
	}
	return []ast.Node{x.L, x.R}
}

// binary compiles binary operators.
func (in *Interp) binary(x *ast.Binary, env *Env) core.Gen {
	switch x.Op {
	case "&":
		// Facts-driven fusion over the surface chain: `&` parses
		// left-associative and normalization keeps the nested Binary
		// shape, so flatten the left spine and apply the same prefix
		// decision FlatProduct gets.
		if in.optimize {
			nodes := productChain(x)
			if k := in.facts.FusablePrefix(nodes); k > 0 {
				gens := make([]core.Gen, len(nodes))
				for i, n := range nodes {
					gens[i] = in.eval(n, env)
				}
				return core.FusedProduct(gens[:k], core.Product(gens[k:]...))
			}
		}
		return core.Product(in.eval(x.L, env), in.eval(x.R, env))
	case "|":
		return core.Alt(in.eval(x.L, env), in.eval(x.R, env))
	case ":=":
		return in.assign(x.L, in.eval(x.R, env), env)
	case "<-":
		return core.RevAssignTo(in.lvalueGen(x.L, env), in.eval(x.R, env))
	case ":=:":
		return core.SwapTo(in.lvalueGen(x.L, env), in.lvalueGen(x.R, env))
	case "<->":
		return core.RevSwapTo(in.lvalueGen(x.L, env), in.lvalueGen(x.R, env))
	case "@":
		return core.ActivateGen(in.eval(x.L, env), in.eval(x.R, env))
	case "\\":
		return core.LimitGen(in.eval(x.L, env), in.eval(x.R, env))
	case "?":
		// String scanning: the body runs inside the scanning environment,
		// compiled fresh per subject value.
		body := x.R
		scope := env
		return core.ScanExpr(in.scan, in.eval(x.L, env), func() core.Gen {
			return in.eval(body, scope)
		})
	}
	if op2, ok := core.ArithOp(x.Op); ok {
		return core.Op2(op2, in.eval(x.L, env), in.eval(x.R, env))
	}
	if cmp, ok := core.CompareOp(x.Op); ok {
		return core.Cmp2(cmp, in.eval(x.L, env), in.eval(x.R, env))
	}
	// Augmented assignment: "op:=".
	if len(x.Op) > 2 && x.Op[len(x.Op)-2:] == ":=" {
		base := x.Op[:len(x.Op)-2]
		if op2, ok := core.ArithOp(base); ok {
			return core.AugAssignTo(op2, in.lvalueGen(x.L, env), in.eval(x.R, env))
		}
		if cmp, ok := core.CompareOp(base); ok {
			return core.CmpAugAssignTo(cmp, in.lvalueGen(x.L, env), in.eval(x.R, env))
		}
	}
	value.Raise(value.ErrProcedure, "unknown operator "+x.Op+" at "+fmtPos(x.P), nil)
	panic("unreachable")
}

// lvalueGen compiles an assignment target to a generator of variables.
func (in *Interp) lvalueGen(target ast.Node, env *Env) core.Gen {
	switch t := target.(type) {
	case *ast.Ident:
		return core.Unit(in.resolve(t.Name, env))
	case *ast.TmpRef:
		return core.Unit(in.resolve(t.Name, env))
	case *ast.Index:
		return core.IndexGen(in.eval(t.X, env), in.eval(t.I, env))
	case *ast.Field:
		return core.FieldGen(in.eval(t.X, env), t.Name)
	case *ast.Unary:
		if t.Op == "!" {
			// every !L := 0: element references are assignable.
			return core.Promote(in.eval(t.X, env))
		}
	}
	// General expression target: evaluate; results must be variables.
	return in.eval(target, env)
}

func (in *Interp) assign(target ast.Node, src core.Gen, env *Env) core.Gen {
	if id, ok := target.(*ast.Ident); ok {
		return core.AssignVar(in.resolve(id.Name, env), src)
	}
	if id, ok := target.(*ast.TmpRef); ok {
		return core.AssignVar(in.resolve(id.Name, env), src)
	}
	return core.Assign(in.lvalueGen(target, env), src)
}

// unary compiles prefix operators, including the calculus operators of
// Figure 1.
func (in *Interp) unary(x *ast.Unary, env *Env) core.Gen {
	switch x.Op {
	case "!":
		return core.Promote(in.eval(x.X, env))
	case "@":
		return core.ActivateGen(nil, in.eval(x.X, env))
	case "^":
		return core.Op1(core.Refresh, in.eval(x.X, env))
	case "*":
		return core.SizeOp(in.eval(x.X, env))
	case "-":
		return core.Op1(value.Neg, in.eval(x.X, env))
	case "+":
		return core.Op1(value.Pos, in.eval(x.X, env))
	case "~":
		return core.Op1(value.Complement, in.eval(x.X, env))
	case "/":
		return core.NullTest(in.eval(x.X, env))
	case "\\":
		return core.NonNullTest(in.eval(x.X, env))
	case "?":
		return core.RandomGen(in.eval(x.X, env))
	case "=":
		// =s ≡ tab(match(s)) against the current scanning environment.
		tm := in.builtins["tabMatch"].(*value.Proc)
		return core.Apply1(func(v value.V) core.Gen { return tm.Call(v) }, in.eval(x.X, env))
	case "|":
		return core.RepeatAlt(in.eval(x.X, env))
	case "not":
		return core.Not(in.eval(x.X, env))
	case "<>":
		// First-class generator over the (unshadowed) expression.
		body := x.X
		scope := env
		return core.Defer(func() core.Gen {
			return core.Unit(core.NewFirstClass(in.eval(body, scope)))
		})
	case "|<>":
		return core.Defer(func() core.Gen {
			return core.Unit(in.makeCoexpr(x.X, env))
		})
	case "|>":
		// Facts-driven provisioning: strictly pure producers run inline
		// (no goroutine, no queue); bounded producers get a queue sized to
		// their whole sequence instead of the default.
		strategy := in.facts.PipeStrategy(x.X)
		if strategy.Inline {
			return core.Defer(func() core.Gen {
				return core.Unit(pipe.NewInline(in.makeCoexpr(x.X, env)))
			})
		}
		buffer := strategy.Buffer
		if buffer <= 0 {
			buffer = pipe.DefaultBuffer
		}
		return core.Defer(func() core.Gen {
			p := pipe.New(in.makeCoexpr(x.X, env), buffer)
			p.StartEager()
			return core.Unit(p)
		})
	}
	value.Raise(value.ErrProcedure, "unknown unary operator "+x.Op, nil)
	panic("unreachable")
}

// makeCoexpr synthesizes a co-expression for |<>e and |>e: the referenced
// locals are found by textually scoping up (§5D), snapshotted, and the body
// is compiled against the shadowed environment.
func (in *Interp) makeCoexpr(body ast.Node, env *Env) *coexpr.CoExpr {
	names := freeLocals(body, env)
	locals := make([]value.V, len(names))
	for i, name := range names {
		cell, _ := env.Lookup(name)
		locals[i] = cell.Get()
	}
	return coexpr.New(locals, func(cells []*value.Var) core.Gen {
		shadow := NewEnv(env)
		for i, name := range names {
			shadow.vars[name] = cells[i]
		}
		return in.eval(body, shadow)
	})
}

// freeLocals collects, in first-use order, identifiers in n bound to local
// variables in env — the "textually scoping up for referenced locals" of
// §5D.
func freeLocals(n ast.Node, env *Env) []string {
	var names []string
	seen := map[string]bool{}
	ast.Walk(n, func(m ast.Node) bool {
		var name string
		switch id := m.(type) {
		case *ast.Ident:
			name = id.Name
		case *ast.TmpRef:
			name = id.Name
		default:
			return true
		}
		if seen[name] {
			return true
		}
		if _, ok := env.Lookup(name); ok {
			seen[name] = true
			names = append(names, name)
		}
		return true
	})
	return names
}

// nativeCall compiles expr::name(args): lookup in the native registry, with
// the receiver (when present) passed as the first argument.
func (in *Interp) nativeCall(x *ast.NativeCall, env *Env) core.Gen {
	native, ok := in.natives[x.Name]
	if !ok {
		value.Raise(value.ErrProcedure, "unregistered native ::"+x.Name+" at "+fmtPos(x.P), nil)
	}
	gens := make([]core.Gen, 0, len(x.Args)+1)
	if x.Recv != nil {
		gens = append(gens, in.eval(x.Recv, env))
	}
	for _, a := range x.Args {
		gens = append(gens, in.eval(a, env))
	}
	return core.Invoke(core.Unit(native), gens...)
}
