package interp

import (
	"sync"

	"junicon/internal/ast"
	"junicon/internal/core"
	"junicon/internal/value"
)

// Procedure bodies execute structurally so that suspend / return / fail may
// appear anywhere — inside loop bodies, branches and nested blocks — as in
// Figure 4's chunk(), whose suspend sits inside an if inside a while.
// Expressions within statements compile through eval; the control skeleton
// is walked directly, with suspension riding the kernel's coroutine-backed
// NewGen.

// returnSignal unwinds a procedure body for return/fail.
type returnSignal struct {
	v  value.V
	ok bool
}

// stopSignal unwinds when the consumer abandons iteration (yield == false).
type stopSignal struct{}

// makeProc compiles a procedure declaration into a procedure value. Each
// invocation runs an independent suspendable body instance over a fresh
// scope (parameters are variadic in the Unicon way: missing → null).
func (in *Interp) makeProc(d *ast.ProcDecl, defEnv *Env) *value.Proc {
	params := append([]string(nil), d.Params...)
	body := d.Body
	name := d.Name
	// Per-procedure persistent state: static variables live in a scope
	// shared by all invocations, and `initial` clauses (plus static
	// initializers) run exactly once, on the first invocation.
	staticEnv := NewEnv(defEnv)
	var onceInit sync.Once
	for _, s := range body.Stmts {
		if vd, ok := s.(*ast.VarDecl); ok && vd.Kind == "static" {
			for _, n := range vd.Names {
				staticEnv.Define(n, value.NullV)
			}
		}
	}
	return value.NewProc(name, len(params), func(args ...value.V) core.Gen {
		captured := make([]value.V, len(args))
		for i, a := range args {
			captured[i] = value.Deref(a)
		}
		return core.NewGen(func(yield func(value.V) bool) {
			env := NewEnv(staticEnv)
			_ = defEnv
			for i, p := range params {
				if i < len(captured) {
					env.Define(p, captured[i])
				} else {
					env.Define(p, value.NullV)
				}
			}
			// Icon-style procedure tracing (&trace; §9 future work).
			tr := in.tracer
			rawYield := yield
			if tr != nil {
				tr.Call(name, captured)
				yield = func(v value.V) bool {
					tr.Suspend(name, v)
					return rawYield(v)
				}
			}
			onceInit.Do(func() {
				for _, s := range body.Stmts {
					switch x := s.(type) {
					case *ast.VarDecl:
						if x.Kind == "static" {
							for i, n := range x.Names {
								if x.Inits[i] == nil {
									continue
								}
								g := in.eval(x.Inits[i], env)
								if v, ok := core.First(g); ok {
									if cell, found := staticEnv.Lookup(n); found {
										cell.Set(v)
									}
								}
								g.Restart()
							}
						}
					case *ast.Initial:
						in.execBounded(x.Body, env, yield)
					}
				}
			})
			defer func() {
				if r := recover(); r != nil {
					switch sig := r.(type) {
					case returnSignal:
						if sig.ok {
							if tr != nil {
								tr.Return(name, sig.v)
							}
							rawYield(sig.v)
						} else if tr != nil {
							tr.Fail(name)
						}
					case stopSignal:
						// consumer abandoned; just unwind
					default:
						panic(r)
					}
					return
				}
				if tr != nil {
					tr.Fail(name)
				}
			}()
			for _, s := range body.Stmts {
				in.execStmt(s, env, yield)
			}
			// Falling off the end fails the procedure (Icon semantics).
		})
	})
}

// execStmt executes one statement of a procedure body.
func (in *Interp) execStmt(s ast.Node, env *Env, yield func(value.V) bool) {
	switch x := s.(type) {
	case *ast.Block:
		// No block scope in Icon: statements share the procedure scope.
		for _, st := range x.Stmts {
			in.execStmt(st, env, yield)
		}
	case *ast.VarDecl:
		if x.Kind == "static" {
			// Statics are declared and initialized once per procedure
			// (handled in makeProc's first-invocation block).
			return
		}
		for i, name := range x.Names {
			cell := env.Define(name, value.NullV)
			if x.Inits[i] != nil {
				g := in.eval(x.Inits[i], env)
				if v, ok := core.First(g); ok {
					cell.Set(v)
				}
				g.Restart()
			}
		}
	case *ast.Initial:
		// Executed once per procedure, in makeProc's first-invocation block.
		return
	case *ast.Return:
		if x.E == nil {
			panic(returnSignal{v: value.NullV, ok: true})
		}
		g := in.eval(x.E, env)
		v, ok := core.First(g)
		g.Restart()
		panic(returnSignal{v: v, ok: ok})
	case *ast.Fail:
		panic(returnSignal{ok: false})
	case *ast.Suspend:
		// suspend e [do body]: yield every result of e, running the
		// do-clause after each resumption.
		g := in.eval(x.E, env)
		for {
			v, ok := g.Next()
			if !ok {
				return
			}
			if !yield(value.Deref(v)) {
				panic(stopSignal{})
			}
			if x.Body != nil {
				in.execBounded(x.Body, env, yield)
			}
		}
	case *ast.If:
		cond := in.eval(x.Cond, env)
		_, ok := cond.Next()
		cond.Restart()
		if ok {
			in.execStmt(x.Then, env, yield)
		} else if x.Else != nil {
			in.execStmt(x.Else, env, yield)
		}
	case *ast.While:
		in.execLoop(yield, func() {
			for {
				cond := in.eval(x.Cond, env)
				_, ok := cond.Next()
				cond.Restart()
				if x.Until {
					ok = !ok
				}
				if !ok {
					return
				}
				if x.Body != nil {
					in.loopBody(x.Body, env, yield)
				}
			}
		})
	case *ast.Every:
		// `every suspend e [do body]` — the classic produce-all idiom —
		// suspends each result of e, running the do-clause per resumption.
		if sus, isSuspend := x.E.(*ast.Suspend); isSuspend {
			merged := &ast.Suspend{E: sus.E, Body: x.Body}
			merged.P = sus.P
			if sus.Body != nil {
				merged.Body = sus.Body
			}
			in.execStmt(merged, env, yield)
			return
		}
		in.execLoop(yield, func() {
			g := in.eval(x.E, env)
			for {
				if _, ok := g.Next(); !ok {
					return
				}
				if x.Body != nil {
					in.loopBody(x.Body, env, yield)
				}
			}
		})
	case *ast.Repeat:
		in.execLoop(yield, func() {
			for {
				in.loopBody(x.Body, env, yield)
			}
		})
	case *ast.Case:
		subj := in.eval(x.Subject, env)
		sv, ok := core.First(subj)
		subj.Restart()
		if !ok {
			return
		}
		var deflt ast.Node
		for _, c := range x.Clauses {
			if c.Sel == nil {
				deflt = c.Body
				continue
			}
			sel := in.eval(c.Sel, env)
			matched := false
			core.Each(sel, func(v value.V) bool {
				if value.Equiv(sv, v) {
					matched = true
					return false
				}
				return true
			})
			sel.Restart()
			if matched {
				in.execStmt(c.Body, env, yield)
				return
			}
		}
		if deflt != nil {
			in.execStmt(deflt, env, yield)
		}
	case *ast.Break:
		var e core.Gen
		if x.E != nil {
			e = in.eval(x.E, env)
		}
		core.Break(e)
	case *ast.NextStmt:
		core.NextIter()
	case *ast.Binary:
		if x.Op == "?" {
			in.execScan(x, env, yield)
			return
		}
		in.execBounded(s, env, yield)
	default:
		// Plain expression: bounded evaluation.
		in.execBounded(s, env, yield)
	}
}

// execScan executes a scanning statement e1 ? e2 structurally, so suspend
// may appear inside the scanned body (as in the fields() idiom). The
// statement is bounded: one subject value, body executed once, with the
// environment swap discipline maintained across suspensions.
func (in *Interp) execScan(x *ast.Binary, env *Env, yield func(value.V) bool) {
	subj := in.eval(x.L, env)
	sv, ok := core.First(subj)
	subj.Restart()
	if !ok {
		return
	}
	s, oks := value.ToString(sv)
	if !oks {
		value.Raise(value.ErrString, "?: string subject expected", sv)
	}
	inner := &core.ScanState{Subject: string(s), Pos: 1}
	outer := in.scan.Swap(inner)
	defer in.scan.Swap(outer) // restore on return/fail unwinding too
	swappedYield := func(v value.V) bool {
		// While the procedure is suspended, the outer environment rules.
		in.scan.Swap(outer)
		r := yield(v)
		in.scan.Swap(inner)
		return r
	}
	in.execStmt(x.R, env, swappedYield)
}

// execBounded evaluates an expression statement for one result or failure.
func (in *Interp) execBounded(s ast.Node, env *Env, yield func(value.V) bool) {
	// Suspend nested in expression position is still a statement form.
	if _, isSuspend := s.(*ast.Suspend); isSuspend {
		in.execStmt(s, env, yield)
		return
	}
	g := in.eval(s, env)
	g.Next()
	g.Restart()
}

// loopBody runs a loop body once, honoring next.
func (in *Interp) loopBody(body ast.Node, env *Env, yield func(value.V) bool) {
	core.TrapNext(func() { in.execStmt(body, env, yield) })
}

// execLoop runs a structural loop, honoring break: `break e` makes e's
// first result the statement's (discarded) outcome; break with a value
// inside a suspend-producing loop just terminates the loop.
func (in *Interp) execLoop(yield func(value.V) bool, loop func()) {
	brk := core.RunLoop(loop)
	if brk != nil {
		// The break outcome is evaluated (bounded) for its effects.
		brk.Next()
		brk.Restart()
	}
}
