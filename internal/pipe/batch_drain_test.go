package pipe

import (
	"testing"

	"junicon/internal/core"
)

func TestBatchDrainCounts(t *testing.T) {
	for _, batch := range []int{2, 3, 8, 64, 512} {
		for _, n := range []int64{1, 7, 8, 9, 100, 10000, 300000} {
			p := FromGenBatched(core.IntRange(1, n), 1024, batch)
			var got int64
			for {
				v, ok := p.Next()
				if !ok {
					break
				}
				_ = v
				got++
			}
			if got != n {
				t.Fatalf("batch=%d n=%d: drained %d", batch, n, got)
			}
		}
	}
}
