package pipe

import (
	"testing"

	"junicon/internal/core"
)

// TestBatchedRefillAllocLean guards the batched transport's per-value
// allocation budget: draining interned-range integers through the batched
// refill path must stay near zero allocations per value (the refill
// buffer, batch runs, and consumer-side staging are all reused).
func TestBatchedRefillAllocLean(t *testing.T) {
	const n = 1024
	allocs := testing.AllocsPerRun(5, func() {
		p := FromGenBatched(core.IntRange(1, n), 64, 64)
		for {
			if _, ok := p.Next(); !ok {
				break
			}
		}
	})
	if perValue := allocs / n; perValue > 0.2 {
		t.Fatalf("batched refill: %.3f allocs/value (%v total), want <= 0.2", perValue, allocs)
	}
}

// TestPlainPipeAllocLean is the same guard for the unbatched queue path.
func TestPlainPipeAllocLean(t *testing.T) {
	const n = 1024
	allocs := testing.AllocsPerRun(5, func() {
		p := FromGen(core.IntRange(1, n), 64)
		for {
			if _, ok := p.Next(); !ok {
				break
			}
		}
	})
	if perValue := allocs / n; perValue > 0.2 {
		t.Fatalf("plain pipe: %.3f allocs/value (%v total), want <= 0.2", perValue, allocs)
	}
}
