package pipe

import (
	"testing"

	"junicon/internal/core"
	"junicon/internal/pool"
	"junicon/internal/value"
)

// TestOnPoolDrain checks the basic pooled mode: producers run on reused
// pool workers and the consumed sequence is unchanged.
func TestOnPoolDrain(t *testing.T) {
	pl := pool.New(2)
	defer pl.Shutdown()
	for round := 0; round < 3; round++ {
		p := FromGen(core.IntRange(1, 50), 4).OnPool(pl)
		got := core.Drain(core.Bang(p), 0)
		if len(got) != 50 {
			t.Fatalf("round %d: drained %d values", round, len(got))
		}
		for i, v := range got {
			if n := toInt(t, v); n != int64(i+1) {
				t.Fatalf("round %d: got[%d] = %d", round, i, n)
			}
		}
	}
}

// TestOnPoolBatchedDrain checks pooled mode composed with batched
// transport.
func TestOnPoolBatchedDrain(t *testing.T) {
	pl := pool.New(2)
	defer pl.Shutdown()
	p := FromGenBatched(core.IntRange(1, 200), 8, 16).OnPool(pl)
	got := core.Drain(core.Bang(p), 0)
	if len(got) != 200 {
		t.Fatalf("drained %d values", len(got))
	}
}

// TestOnPoolStopReleasesWorker stops a pooled pipe mid-stream and then
// runs a second pipe on the same single-worker pool: if Stop failed to
// release the worker, the second pipe would never produce.
func TestOnPoolStopReleasesWorker(t *testing.T) {
	pl := pool.New(1)
	defer pl.Shutdown()
	p := FromGen(core.IntRange(1, 1<<40), 2).OnPool(pl)
	for i := 0; i < 3; i++ {
		if _, ok := p.Next(); !ok {
			t.Fatal("pipe failed early")
		}
	}
	p.Stop()

	q := FromGen(core.IntRange(1, 10), 2).OnPool(pl)
	got := core.Drain(core.Bang(q), 0)
	if len(got) != 10 {
		t.Fatalf("second pipe drained %d values; worker not released", len(got))
	}
}

// TestOnPoolRestart restarts a stopped pooled pipe; the fresh producer
// runs on the same pool.
func TestOnPoolRestart(t *testing.T) {
	pl := pool.New(1)
	defer pl.Shutdown()
	p := FromGen(core.IntRange(1, 5), 2).OnPool(pl)
	if v, ok := p.Next(); !ok || toInt(t, v) != 1 {
		t.Fatalf("first = %v %v", v, ok)
	}
	p.Stop()
	p.Restart()
	got := core.Drain(core.Bang(p), 0)
	if len(got) != 5 || toInt(t, got[0]) != 1 {
		t.Fatalf("restarted drain = %v", got)
	}
}

// TestOnPoolRefreshKeepsPool checks ^p: the refreshed pipe inherits the
// pool placement (drain it over a 1-worker pool that would block forever
// if the refresh spawned nothing).
func TestOnPoolRefreshKeepsPool(t *testing.T) {
	pl := pool.New(1)
	defer pl.Shutdown()
	p := FromGen(core.IntRange(1, 4), 2).OnPool(pl)
	core.Drain(core.Bang(p), 0)
	r := p.Refresh().(*Pipe)
	if r.pool != pl {
		t.Fatal("refresh dropped the pool placement")
	}
	got := core.Drain(core.Bang(r), 0)
	if len(got) != 4 {
		t.Fatalf("refreshed drain = %v", got)
	}
}

// TestOnPoolAfterShutdown drives a pipe placed on an already-shut-down
// pool: the sequence is empty and Err reports pool.ErrShutdown.
func TestOnPoolAfterShutdown(t *testing.T) {
	pl := pool.New(1)
	pl.Shutdown()
	p := FromGen(core.IntRange(1, 10), 2).OnPool(pl)
	if v, ok := p.Next(); ok {
		t.Fatalf("produced %v from a dead pool", v)
	}
	if p.Err() != pool.ErrShutdown {
		t.Fatalf("Err = %v, want pool.ErrShutdown", p.Err())
	}
}

// TestOnPoolPanicsAfterStart documents the placement contract: the pool
// must be chosen before the producer exists.
func TestOnPoolPanicsAfterStart(t *testing.T) {
	pl := pool.New(1)
	defer pl.Shutdown()
	p := FromGen(core.IntRange(1, 3), 2)
	p.StartEager()
	defer func() {
		if recover() == nil {
			t.Fatal("OnPool after start did not panic")
		}
	}()
	p.OnPool(pl)
}

func toInt(t *testing.T, v value.V) int64 {
	t.Helper()
	i, ok := value.ToInteger(value.Deref(v))
	if !ok {
		t.Fatalf("not an integer: %v", v)
	}
	n, _ := i.Int64()
	return n
}
