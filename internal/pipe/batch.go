package pipe

import (
	"runtime"
	"sync"
	"sync/atomic"

	"junicon/internal/queue"
	"junicon/internal/telemetry"
	"junicon/internal/value"
)

// Batched transport mode. A batched pipe amortizes the per-value queue
// handshake — the dominant cost of §3B's one-value-at-a-time protocol — by
// moving values in runs of up to B, while keeping the Stepper surface and
// the §3B semantics (bounded-buffer throttling, Stop releases a blocked
// producer, failure propagation) exactly as in the unbatched pipe.
//
// The flush policy is Nagle-style adaptive, so latency never regresses for
// slow generators:
//
//   - fill:   when the producer's run reaches B values it is flushed to the
//     transport queue in one PutBatch (one lock, one wakeup, B values).
//   - demand: a consumer observed waiting receives values as they are
//     produced — each append signals the parked consumer, which steals the
//     partial run directly, so a value never idles in the producer's hands
//     while someone wants it.
//   - EOS:    source exhaustion flushes the remainder before closing.
//
// The hot paths are deliberately lock-free. The producer publishes each
// value with one plain slot store plus one atomic length store into a
// shared spill array, then reads an atomic waiter count; it takes a lock
// only to flush a full run or to wake a parked consumer. The consumer
// serves values from a refill buffer under one uncontended mutex and
// refills a whole run at a time (TryTakeBatch from the queue, or stealing
// the producer's published run).
//
// Lost-wakeup freedom is a sequential-consistency argument. The producer
// executes (P1) publish sLen, (P2) load waiters; a consumer parks only
// after (C1) incrementing waiters — an atomic RMW — and then (C2)
// re-checking the queue and the published spill under the park lock. In
// the total order of these seq-cst operations, either C1 precedes P2 (the
// producer sees the waiter and signals) or P1 precedes C2 (the consumer
// sees the value and does not park). While a flush's PutBatch is in flight
// the consumer parks inside the queue's own blocking TakeBatch instead —
// a flush is guaranteed to make at least one element visible there, so
// that wait cannot be missed either. A rendezvous transport has no buffer
// to make elements visible in, which is why start() degrades batching to
// the per-value path for zero-capacity queues.
//
// The producer may run ahead of the consumer by up to queue-capacity + B
// values (bound + spill run): batching widens the §3B throttle window by
// at most one batch, it never removes it. Stop discards the unflushed run
// — the analogue of the unbatched producer's in-hand value — and a
// producer blocked mid-flush is released by the queue close exactly as an
// unbatched producer blocked in Put is.

var hPipeFlush = telemetry.NewHistogram("pipe.flush_size")

// maxRefillSpin caps the consumer's pre-park poll loop (see refill): a
// consumer that merely out-raced the producer on a busy scheduler yields
// and re-polls before paying the park/handoff protocol.
const maxRefillSpin = 64

// batcher holds the batched-mode state for one producer generation.
type batcher struct {
	out      queue.Queue[value.V] // the generation's transport queue
	batch    int64
	observed bool

	// Producer-published run. spill is a fixed array of length batch;
	// slots [steal, sLen) hold published, unconsumed values. Only the
	// producer stores slots and sLen (prodLen is the producer's plain
	// mirror of sLen, so the hot path re-reads nothing atomic); steal is
	// advanced by consumers and reset by the producer, both under pmu.
	spill   []value.V
	sLen    atomic.Int64
	prodLen int64
	steal   int64

	// Park/steal/flush coordination — slow paths only, never per value.
	pmu      sync.Mutex
	hasData  sync.Cond
	waiters  atomic.Int64
	inflight bool // a flush PutBatch is executing outside pmu
	done     bool // producer exited and closed the queue
	stopped  atomic.Bool

	// Consumer side: one mutex guards serving and refilling, so the refill
	// buffer can be reused without a publication protocol. Between refills
	// a Next is one uncontended lock and a slice index. results is the
	// pipe's taken-count, advanced once per refill rather than per value.
	cmu     sync.Mutex
	pending []value.V
	pn, pi  int
	results *atomic.Int64
}

func newBatcher(out queue.Queue[value.V], batch int, observed bool, results *atomic.Int64) *batcher {
	b := &batcher{
		out:      out,
		batch:    int64(batch),
		observed: observed,
		spill:    make([]value.V, batch),
		pending:  make([]value.V, batch),
		results:  results,
	}
	b.hasData.L = &b.pmu
	return b
}

// offer hands one produced value to the transport; reports false when the
// pipe was stopped and the producer should unwind.
func (b *batcher) offer(v value.V) bool {
	if b.stopped.Load() {
		return false
	}
	n := b.prodLen
	b.spill[n] = v
	b.prodLen = n + 1
	b.sLen.Store(n + 1)       // P1: publish
	if b.waiters.Load() > 0 { // P2: observe parked consumer
		b.pmu.Lock()
		b.hasData.Broadcast()
		b.pmu.Unlock()
	}
	if n+1 == b.batch {
		return b.flush()
	}
	return true
}

// flush moves the published, unstolen run into the queue with one PutBatch
// and resets the spill. Runs on the producer only.
func (b *batcher) flush() bool {
	b.pmu.Lock()
	s, n := b.steal, b.sLen.Load()
	vs := b.spill[s:n]
	if len(vs) == 0 {
		// The whole run was stolen (or nothing was produced); recycle the
		// spill so the next run starts at slot zero.
		b.steal = 0
		b.prodLen = 0
		b.sLen.Store(0)
		b.pmu.Unlock()
		return !b.stopped.Load()
	}
	b.inflight = true
	if b.waiters.Load() > 0 {
		// Re-route parked consumers to the queue before a PutBatch that
		// may itself block for space (batch > capacity): from here on only
		// the queue's own condition is signaled as elements land.
		b.hasData.Broadcast()
	}
	b.pmu.Unlock()
	if b.observed {
		hPipeFlush.Observe(int64(len(vs)))
	}
	_, err := b.out.PutBatch(vs)
	b.pmu.Lock()
	b.inflight = false
	b.steal = 0
	b.prodLen = 0
	b.sLen.Store(0)
	if b.waiters.Load() > 0 {
		b.hasData.Broadcast()
	}
	b.pmu.Unlock()
	return err == nil && !b.stopped.Load()
}

// finish flushes the remaining run, closes the queue and wakes every
// consumer. Called once when the source is exhausted.
func (b *batcher) finish() {
	b.flush()
	b.out.Close()
	b.pmu.Lock()
	b.done = true
	b.hasData.Broadcast()
	b.pmu.Unlock()
}

// stop discards the unflushed run and wakes every consumer; the caller has
// closed (or is about to close) the transport queue.
func (b *batcher) stop() {
	b.stopped.Store(true)
	b.pmu.Lock()
	b.hasData.Broadcast()
	b.pmu.Unlock()
}

// next yields the next value on the consumer side. Served slots are not
// cleared individually — the next refill overwrites them, so at most one
// batch of dead references outlives its consumption. The fast path is kept
// small enough to inline into Pipe.Next.
func (b *batcher) next() (value.V, bool) {
	b.cmu.Lock()
	if b.pi < b.pn {
		v := b.pending[b.pi]
		b.pi++
		b.cmu.Unlock()
		return v, true
	}
	return b.nextSlow()
}

// nextSlow refills and serves the run's first value. Caller holds cmu.
func (b *batcher) nextSlow() (value.V, bool) {
	n, ok := b.refill()
	if !ok {
		b.cmu.Unlock()
		return nil, false
	}
	b.results.Add(int64(n))
	v := b.pending[0]
	b.pn, b.pi = n, 1
	b.cmu.Unlock()
	return v, true
}

// refill obtains the next run of values into b.pending and reports its
// length. Caller holds cmu (serializing consumers and licensing reuse of
// the pending buffer); refill manages pmu itself.
func (b *batcher) refill() (int, bool) {
	out := b.out
	dst := b.pending[:b.batch]
	// Opportunistic poll before engaging the park protocol: on a busy
	// scheduler the producer is typically runnable with a full run, and
	// one yield is cheaper than a futex round trip.
	for i := 0; i < maxRefillSpin; i++ {
		n, err := out.TryTakeBatch(dst)
		if n > 0 {
			return n, true
		}
		if err != nil { // closed and drained
			return 0, false
		}
		if b.sLen.Load() > 0 {
			break // a partial run is published; steal it under pmu
		}
		runtime.Gosched()
	}
	b.pmu.Lock()
	registered := false
	for {
		n, err := out.TryTakeBatch(dst)
		if n > 0 {
			if registered {
				b.waiters.Add(-1)
			}
			b.pmu.Unlock()
			return n, true
		}
		if err != nil {
			if registered {
				b.waiters.Add(-1)
			}
			b.pmu.Unlock()
			return 0, false
		}
		if b.inflight {
			// A flush is delivering into the queue right now; park inside
			// the queue's own blocking take, which that delivery must wake.
			if registered {
				b.waiters.Add(-1)
			}
			b.pmu.Unlock()
			n, err := out.TakeBatch(dst)
			if err != nil {
				return 0, false
			}
			if n > 0 {
				return n, true
			}
			b.pmu.Lock()
			registered = false
			continue
		}
		if s, e := b.steal, b.sLen.Load(); e > s {
			// Demand-driven steal: the producer's published partial run
			// goes straight to the consumer without touching the queue.
			copied := copy(dst, b.spill[s:e])
			b.steal = e
			if registered {
				b.waiters.Add(-1)
			}
			b.pmu.Unlock()
			return copied, true
		}
		if b.done || b.stopped.Load() {
			if registered {
				b.waiters.Add(-1)
			}
			b.pmu.Unlock()
			return 0, false
		}
		if !registered {
			// C1: register, then loop to re-check everything before
			// sleeping — the producer's publish/observe order (P1 then P2)
			// guarantees one side sees the other.
			b.waiters.Add(1)
			registered = true
			continue
		}
		b.hasData.Wait()
	}
}
