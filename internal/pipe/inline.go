package pipe

import (
	"junicon/internal/core"
	"junicon/internal/value"
)

// Inline is the fact-driven stand-in for a Pipe over a statically pure
// producer: the same Stepper surface — Type/Image report a pipe, Stop and
// Err behave like the proxy's, a runtime error inside the producer fails
// the consumer instead of crashing the host — but evaluation happens
// synchronously in the consumer's thread. No goroutine, no transport
// queue, no pool scheduling. The substitution is sound only because the
// producer is pure: with nothing observable inside it, eager-asynchronous
// and lazy-synchronous evaluation yield identical traces.
type Inline struct {
	src       core.Stepper
	err       error
	stopped   bool
	exhausted bool
	results   int
}

var (
	_ value.Gen    = (*Inline)(nil)
	_ core.Stepper = (*Inline)(nil)
	_ value.Sized  = (*Inline)(nil)
)

// NewInline returns an inline proxy over src.
func NewInline(src core.Stepper) *Inline { return &Inline{src: src} }

// InlineFromGen lifts a plain generator into an inline proxy (the
// FromGen analogue).
func InlineFromGen(g core.Gen) *Inline { return NewInline(core.NewFirstClass(g)) }

// Next produces the next value synchronously. Like a pipe whose producer
// iterated to failure, an exhausted (or stopped, or errored) inline proxy
// fails on every subsequent Next.
func (i *Inline) Next() (value.V, bool) {
	if i.stopped || i.exhausted || i.err != nil {
		return nil, false
	}
	var v value.V
	var ok bool
	if err := core.Protect(func() { v, ok = i.src.Step(value.NullV) }); err != nil {
		i.err = err
		return nil, false
	}
	if !ok {
		i.exhausted = true
		return nil, false
	}
	if v == nil {
		v = value.NullV
	}
	i.results++
	return value.Deref(v), true
}

// Restart arranges a fresh producer incarnation, as Pipe.Restart does.
func (i *Inline) Restart() {
	i.src = i.src.Refresh()
	i.err = nil
	i.stopped = false
	i.exhausted = false
	i.results = 0
}

// Stop terminates the proxy; further Nexts fail until Restart. There is
// no producer thread to release.
func (i *Inline) Stop() { i.stopped = true }

// StartEager is a no-op: laziness is the point of the inline proxy, and
// purity is what makes it unobservable.
func (i *Inline) StartEager() {}

// Err reports the runtime error that terminated the producer, if any.
func (i *Inline) Err() error { return i.err }

// Step implements the activation operator @ on the proxy.
func (i *Inline) Step(value.V) (value.V, bool) { return i.Next() }

// Refresh implements ^ on the proxy: a fresh one over a refreshed source.
func (i *Inline) Refresh() core.Stepper { return &Inline{src: i.src.Refresh()} }

// Size reports the number of results taken so far (*P).
func (i *Inline) Size() int { return i.results }

// Type returns "co-expression", like the proxy it stands in for.
func (i *Inline) Type() string { return "co-expression" }

// Image identifies the value as a pipe — inlining must be invisible.
func (i *Inline) Image() string { return "pipe" }

// First takes the first result and stops the proxy (future semantics).
func (i *Inline) First() (value.V, bool) {
	v, ok := i.Next()
	i.Stop()
	return v, ok
}
