// Package pipe implements generator proxies (§3B): a pipe |>e runs a
// co-expression in its own thread of execution, iterating it to failure and
// publishing each result through a blocking queue; the surrounding
// expression consumes the queue, so producer and consumer run in parallel —
// explicit task parallelism in the form of a pipeline.
//
//	|>e → new Iterator() { next() { new Thread { run() {
//	    c = |<>e; while (!fail) { out.put(@c); }}}.start() }}
//
// The output queue is exposed (Out) "to permit further manipulation", and
// bounding its buffer throttles the threaded co-expression. A pipe limited
// to a single result is a future (see First).
//
// A pipe may run in batched mode (NewBatched): values move through the
// queue in runs of up to B with a Nagle-style adaptive flush, amortizing
// the per-value handshake without changing anything observable at the
// Stepper surface — see batch.go for the protocol.
package pipe

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"junicon/internal/core"
	"junicon/internal/inspect"
	"junicon/internal/pool"
	"junicon/internal/queue"
	"junicon/internal/telemetry"
	"junicon/internal/value"
)

// Pipe telemetry: producer lifecycle counters plus, per started pipe, an
// instrumented transport queue (blocked time, depth, occupancy — see
// queue.Instrument). Instrumentation is decided once per producer start,
// so pipes started while telemetry is off carry zero overhead.
var (
	cProducersStarted = telemetry.NewCounter("pipe.producers_started")
	gProducersActive  = telemetry.NewGauge("pipe.producers_active")
	cPipeValues       = telemetry.NewCounter("pipe.values")
	cPipeErrors       = telemetry.NewCounter("pipe.producer_errors")
)

// DefaultBuffer is the output-queue bound used when none is given.
const DefaultBuffer = 1024

// generation is one producer incarnation: its transport queue, its
// inspection handle (nil while inspection is off — see internal/inspect)
// and, in batched mode, its batcher. Next loads it with a single atomic
// read once the producer is running.
type generation struct {
	out queue.Queue[value.V]
	h   *inspect.Handle // nil: uninspected
	b   *batcher        // nil in per-value mode
}

// Pipe is a generator proxy for a co-expression running in a separate
// goroutine. It implements value.Gen (so it composes with the kernel),
// core.Stepper (so @, ! and ^ apply) and value.V (so it is first-class).
type Pipe struct {
	mu      sync.Mutex
	src     core.Stepper
	out     queue.Queue[value.V]
	mkQueue func() queue.Queue[value.V]
	batch   int        // > 1 enables batched transport
	pool    *pool.Pool // non-nil: producer runs on a pool worker, not its own goroutine
	ownSrc  bool       // src is a FirstClass this package built (FromGen et al.)
	started bool
	err     error
	stream  uint64 // telemetry stream ID; 0 until an observed start

	cur     atomic.Pointer[generation]
	results atomic.Int64
}

var (
	_ value.Gen    = (*Pipe)(nil)
	_ core.Stepper = (*Pipe)(nil)
	_ value.Sized  = (*Pipe)(nil)
)

// New returns a pipe over the co-expression (or any first-class iterator)
// src, transporting results through a bounded blocking queue of the given
// buffer size (<= 0 selects DefaultBuffer; 1 yields M-var/future behaviour,
// maximally throttling the producer). The producer thread starts on the
// first Next, as in the paper's unraveling of |>e.
func New(src core.Stepper, buffer int) *Pipe {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	return &Pipe{
		src:     src,
		mkQueue: func() queue.Queue[value.V] { return queue.NewArrayBlocking[value.V](buffer) },
	}
}

// NewBatched returns a pipe that moves values through its queue in runs of
// up to batch, flushing adaptively (on fill, on EOS, and immediately when
// the consumer is waiting). batch <= 1 is exactly New. The producer may run
// ahead by up to buffer+batch values; Stop/Restart/Err/First semantics are
// unchanged.
func NewBatched(src core.Stepper, buffer, batch int) *Pipe {
	p := New(src, buffer)
	if batch > 1 {
		p.batch = batch
	}
	return p
}

// NewWithQueue returns a pipe transporting results through queues produced
// by mk — e.g. a Synchronous queue for rendezvous hand-off.
func NewWithQueue(src core.Stepper, mk func() queue.Queue[value.V]) *Pipe {
	return &Pipe{src: src, mkQueue: mk}
}

// NewBatchedWithQueue combines NewWithQueue with batched transport — used
// by the differential stress harness to batch over schedule-perturbed
// queues. Zero-capacity (rendezvous) queues degrade to per-value hand-off.
func NewBatchedWithQueue(src core.Stepper, mk func() queue.Queue[value.V], batch int) *Pipe {
	p := NewWithQueue(src, mk)
	if batch > 1 {
		p.batch = batch
	}
	return p
}

// FromGen lifts a plain generator into a pipe: |>e over <>e.
func FromGen(g core.Gen, buffer int) *Pipe {
	p := New(core.NewFirstClass(g), buffer)
	p.ownSrc = true
	return p
}

// FromGenBatched lifts a plain generator into a batched pipe.
func FromGenBatched(g core.Gen, buffer, batch int) *Pipe {
	p := NewBatched(core.NewFirstClass(g), buffer, batch)
	p.ownSrc = true
	return p
}

// OnPool arranges for the producer to run on a worker of pl instead of a
// goroutine of its own — the paper's §5D thread-pool management applied to
// generator proxies: many short-lived pipes reuse a fixed set of workers.
// Semantics at the Stepper surface (Stop/Restart/StartEager/First, error
// propagation, the trace contract) are unchanged; Refresh propagates the
// pool to the refreshed proxy.
//
// Two caveats follow from running on shared workers. A producer blocked on
// a full output queue holds its worker, so consumers must drain pooled
// pipes in an order that keeps at least one running producer consumable —
// FIFO spawn order, as the windowed map-reduce drives it, is always safe.
// And if the pool is shut down before the producer starts, the pipe fails
// (empty sequence) with Err() = pool.ErrShutdown.
//
// OnPool must be called before the producer starts; it returns p.
func (p *Pipe) OnPool(pl *pool.Pool) *Pipe {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		panic("pipe: OnPool after producer start")
	}
	p.pool = pl
	return p
}

// rendezvouser is implemented by queues with no buffer at all; batching
// cannot amortize a rendezvous, and the batched protocol requires flushed
// elements to become visible in the queue, so such transports stay on the
// per-value path.
type rendezvouser interface{ Rendezvous() bool }

// start spawns the producer goroutine. Caller holds p.mu.
func (p *Pipe) start() {
	p.out = p.mkQueue()
	p.started = true
	batch := p.batch
	if r, ok := p.out.(rendezvouser); ok && r.Rendezvous() {
		batch = 1
	}
	// Observation is decided once per producer start: an unobserved pipe
	// runs exactly the pre-telemetry code path.
	observed := telemetry.Active()
	if observed {
		if p.stream == 0 {
			p.stream = telemetry.NextStream()
		}
		p.out = queue.Instrument(p.out, p.stream, "pipe")
		cProducersStarted.Inc()
		gProducersActive.Add(1)
	}
	// Inspection is decided the same way: an uninspected pipe carries a
	// nil handle and the hot paths pay one nil check per value.
	var h *inspect.Handle
	if inspect.On() {
		if p.stream == 0 {
			p.stream = telemetry.NextStream()
		}
		h = inspect.Register(p.stream, inspect.KindPipe,
			fmt.Sprintf("pipe(cap=%d,batch=%d)", p.out.Cap(), batch))
		probe := p.out
		h.SetDepthProbe(func() (int, int) { return probe.Len(), probe.Cap() })
	}
	var b *batcher
	if batch > 1 {
		b = newBatcher(p.out, batch, observed, &p.results)
	}
	p.cur.Store(&generation{out: p.out, h: h, b: b})
	src, out, stream := p.src, p.out, p.stream
	var gen core.Gen
	if p.ownSrc && !observed && h == nil {
		if fc, ok := src.(*core.FirstClass); ok {
			gen = fc.G
		}
	}
	run := func() {
		if h != nil {
			defer inspect.BindProducer(h)()
		}
		var startTime time.Time
		var produced int64
		if observed {
			startTime = time.Now()
			defer func() {
				gProducersActive.Add(-1)
				telemetry.EmitSpan(stream, telemetry.KindProducer, "pipe", produced, startTime)
			}()
		}
		// An Icon runtime error raised inside the piped expression must
		// not crash the host: record it, fail the consumer side.
		defer func() {
			if r := recover(); r != nil {
				p.mu.Lock()
				if re, ok := r.(*value.RuntimeError); ok {
					p.err = re
				} else {
					p.err = fmt.Errorf("pipe: producer panic: %v", r)
				}
				p.mu.Unlock()
				if observed {
					cPipeErrors.Inc()
				}
				// Values yielded before the error are already in the queue
				// on the per-value path; the batched path must flush its
				// published run first so error propagation delivers exactly
				// the same prefix. finish never hangs here: a stopped pipe's
				// closed queue aborts the flush with ErrClosed.
				if b != nil {
					b.finish()
				} else {
					out.Close()
				}
			}
		}()
		if gen != nil {
			// Own-source, unobserved fast loop: iterate the generator
			// directly, skipping the FirstClass Step indirection and the
			// per-value telemetry checks. Semantically identical — the
			// wrapping FirstClass is not reachable outside this pipe.
			for {
				v, ok := gen.Next()
				if !ok {
					break
				}
				if v == nil {
					v = value.NullV
				}
				v = value.Deref(v)
				if b != nil {
					if !b.offer(v) {
						return // consumer stopped the pipe
					}
				} else if out.Put(v) != nil {
					return // consumer stopped the pipe
				}
			}
		} else {
			for {
				v, ok := src.Step(value.NullV)
				if !ok {
					break
				}
				if v == nil {
					v = value.NullV
				}
				v = value.Deref(v)
				// The blocked-put mark is set unconditionally before the
				// (possibly blocking) publish and cleared after: only
				// staleness makes it meaningful to the watchdog.
				if h != nil {
					h.BlockedPut()
				}
				if b != nil {
					if !b.offer(v) {
						return // consumer stopped the pipe
					}
				} else if out.Put(v) != nil {
					return // consumer stopped the pipe
				}
				if h != nil {
					h.Running()
					h.Produced(1)
				}
				if observed {
					produced++
					cPipeValues.Inc()
				}
			}
		}
		if h != nil {
			h.Draining()
		}
		if b != nil {
			b.finish()
		} else {
			out.Close()
		}
	}
	if h != nil {
		// Label the producer goroutine (or pooled worker, for the task's
		// duration) with the stream ID, so the watchdog — and a human at
		// /debug/pprof/goroutine?debug=1 — can find the goroutine serving
		// a stuck stream.
		inner := run
		labels := pprof.Labels(inspect.ProducerLabel, inspect.StreamID(h.ID()))
		run = func() { pprof.Do(context.Background(), labels, func(context.Context) { inner() }) }
	}
	if p.pool != nil {
		if err := p.pool.Go(run); err != nil {
			// The pool is shut down; the producer can never run. Record the
			// cause and close the transport so the consumer fails promptly.
			p.err = err
			if observed {
				gProducersActive.Add(-1)
				cPipeErrors.Inc()
			}
			if b != nil {
				b.finish()
			} else {
				out.Close()
			}
		}
		return
	}
	go run()
}

// Err reports the runtime error that terminated the producer, if any. A
// pipe whose expression raised an error fails from the consumer's point of
// view; Err distinguishes that from ordinary exhaustion.
func (p *Pipe) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// StartEager spawns the producer immediately instead of on first Next —
// used by map-reduce, where all task pipes must run concurrently from the
// moment they are created (Figure 4's every-loop spawns them all before any
// result is consumed).
func (p *Pipe) StartEager() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		p.start()
	}
}

// Next takes the next produced value from the queue, failing when the
// producer has iterated its co-expression to failure. The @ operation on a
// pipe "is out.take()" (§3B).
func (p *Pipe) Next() (value.V, bool) {
	g := p.cur.Load()
	if g == nil {
		p.mu.Lock()
		if !p.started {
			p.start()
		}
		g = p.cur.Load()
		p.mu.Unlock()
	}
	if h := g.h; h != nil {
		// Consumer-side inspection: record the topology edge once, mark
		// the take (cleared below), and retire the handle on exhaustion.
		inspect.NoteConsumeOnce(h)
		h.BlockedTake()
	}
	if g.b != nil {
		// The batcher advances p.results itself, once per refill.
		v, ok := g.b.next()
		if h := g.h; h != nil {
			if ok {
				h.Consumed(1)
				h.Running()
			} else {
				h.Close()
			}
		}
		return v, ok
	}
	v, err := g.out.Take()
	if err != nil {
		g.h.Close()
		return nil, false
	}
	if h := g.h; h != nil {
		h.Consumed(1)
		h.Running()
	}
	p.results.Add(1)
	return v, true
}

// Restart stops the current producer and arranges for a fresh one over a
// refreshed co-expression on the next Next.
func (p *Pipe) Restart() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		p.stopCurrentLocked()
		p.cur.Store(nil) // next Next spawns the fresh producer
		p.started = false
		p.src = p.src.Refresh()
	}
	p.results.Store(0)
}

// Stop terminates the producer without restarting; further Nexts fail until
// Restart. Safe to call at any time — including while a batched producer is
// blocked mid-flush: closing the queue releases its PutBatch, and the
// discarded partial run mirrors the unbatched producer's in-hand value.
func (p *Pipe) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		// Arrange for Next to fail immediately rather than spawn.
		p.out = p.mkQueue()
		p.out.Close()
		p.started = true
		p.cur.Store(&generation{out: p.out})
		return
	}
	p.stopCurrentLocked()
}

// stopCurrentLocked closes the current generation's transport and wakes
// every batched-mode waiter; Next afterwards drains the closed queue and
// fails. Caller holds p.mu.
func (p *Pipe) stopCurrentLocked() {
	p.out.Close()
	if g := p.cur.Load(); g != nil {
		if g.b != nil {
			g.b.stop()
		}
		g.h.Close()
	}
	p.cur.Store(&generation{out: p.out})
}

// Out exposes the transport queue — the paper makes the BlockingQueue "a
// public field to permit further manipulation". It is nil until the
// producer starts. In batched mode values appear in it one flush at a time;
// a run being handed directly to a waiting consumer bypasses it.
func (p *Pipe) Out() queue.Queue[value.V] {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out
}

// Step implements the activation operator @ on the pipe.
func (p *Pipe) Step(value.V) (value.V, bool) { return p.Next() }

// Refresh implements ^ on the pipe: a new proxy over a refreshed
// co-expression.
func (p *Pipe) Refresh() core.Stepper {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		p.stopCurrentLocked()
	}
	return &Pipe{src: p.src.Refresh(), mkQueue: p.mkQueue, batch: p.batch, pool: p.pool}
}

// Stream reports the pipe's telemetry stream ID — 0 unless the producer
// started while telemetry or inspection was active.
func (p *Pipe) Stream() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stream
}

// Size reports the number of results taken so far (*P). In batched mode
// the count advances one run at a time as values reach the consumer side,
// so mid-iteration it may lead the delivered count by up to one batch; at
// quiescence (exhaustion, Stop) it is exact.
func (p *Pipe) Size() int {
	return int(p.results.Load())
}

// Type returns "co-expression": a pipe is a proxy for one.
func (p *Pipe) Type() string { return "co-expression" }

// Image identifies the value as a pipe.
func (p *Pipe) Image() string { return "pipe" }

// First runs the pipe as a future: it takes the first result and stops the
// producer — also when the pipe was started eagerly (StartEager), so a
// producer blocked on a full queue or mid-batch-flush is always released
// after the single result is in hand. ok is false when the piped expression
// failed without a result.
func (p *Pipe) First() (value.V, bool) {
	v, ok := p.Next()
	p.Stop()
	return v, ok
}

// Chain builds a parallel pipeline: stage i+1 consumes the promoted output
// of the pipe around stage i. Each stage is a function from an input
// generator to an output generator; the returned generator produces the
// final stage's results while every stage runs in its own goroutine.
func Chain(src core.Gen, buffer int, stages ...func(core.Gen) core.Gen) core.Gen {
	g := src
	for _, stage := range stages {
		g = stage(core.Bang(FromGen(g, buffer)))
	}
	return g
}

// ChainBatched is Chain with batched transport between stages.
func ChainBatched(src core.Gen, buffer, batch int, stages ...func(core.Gen) core.Gen) core.Gen {
	g := src
	for _, stage := range stages {
		g = stage(core.Bang(FromGenBatched(g, buffer, batch)))
	}
	return g
}
