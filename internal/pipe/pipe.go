// Package pipe implements generator proxies (§3B): a pipe |>e runs a
// co-expression in its own thread of execution, iterating it to failure and
// publishing each result through a blocking queue; the surrounding
// expression consumes the queue, so producer and consumer run in parallel —
// explicit task parallelism in the form of a pipeline.
//
//	|>e → new Iterator() { next() { new Thread { run() {
//	    c = |<>e; while (!fail) { out.put(@c); }}}.start() }}
//
// The output queue is exposed (Out) "to permit further manipulation", and
// bounding its buffer throttles the threaded co-expression. A pipe limited
// to a single result is a future (see First).
package pipe

import (
	"fmt"
	"sync"
	"time"

	"junicon/internal/core"
	"junicon/internal/queue"
	"junicon/internal/telemetry"
	"junicon/internal/value"
)

// Pipe telemetry: producer lifecycle counters plus, per started pipe, an
// instrumented transport queue (blocked time, depth, occupancy — see
// queue.Instrument). Instrumentation is decided once per producer start,
// so pipes started while telemetry is off carry zero overhead.
var (
	cProducersStarted = telemetry.NewCounter("pipe.producers_started")
	gProducersActive  = telemetry.NewGauge("pipe.producers_active")
	cPipeValues       = telemetry.NewCounter("pipe.values")
	cPipeErrors       = telemetry.NewCounter("pipe.producer_errors")
)

// DefaultBuffer is the output-queue bound used when none is given.
const DefaultBuffer = 1024

// Pipe is a generator proxy for a co-expression running in a separate
// goroutine. It implements value.Gen (so it composes with the kernel),
// core.Stepper (so @, ! and ^ apply) and value.V (so it is first-class).
type Pipe struct {
	mu      sync.Mutex
	src     core.Stepper
	out     queue.Queue[value.V]
	mkQueue func() queue.Queue[value.V]
	started bool
	results int
	err     error
	stream  uint64 // telemetry stream ID; 0 until an observed start
}

var (
	_ value.Gen    = (*Pipe)(nil)
	_ core.Stepper = (*Pipe)(nil)
	_ value.Sized  = (*Pipe)(nil)
)

// New returns a pipe over the co-expression (or any first-class iterator)
// src, transporting results through a bounded blocking queue of the given
// buffer size (<= 0 selects DefaultBuffer; 1 yields M-var/future behaviour,
// maximally throttling the producer). The producer thread starts on the
// first Next, as in the paper's unraveling of |>e.
func New(src core.Stepper, buffer int) *Pipe {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	return &Pipe{
		src:     src,
		mkQueue: func() queue.Queue[value.V] { return queue.NewArrayBlocking[value.V](buffer) },
	}
}

// NewWithQueue returns a pipe transporting results through queues produced
// by mk — e.g. a Synchronous queue for rendezvous hand-off.
func NewWithQueue(src core.Stepper, mk func() queue.Queue[value.V]) *Pipe {
	return &Pipe{src: src, mkQueue: mk}
}

// FromGen lifts a plain generator into a pipe: |>e over <>e.
func FromGen(g core.Gen, buffer int) *Pipe {
	return New(core.NewFirstClass(g), buffer)
}

// start spawns the producer goroutine. Caller holds p.mu.
func (p *Pipe) start() {
	p.out = p.mkQueue()
	p.started = true
	// Observation is decided once per producer start: an unobserved pipe
	// runs exactly the pre-telemetry code path.
	observed := telemetry.Active()
	if observed {
		if p.stream == 0 {
			p.stream = telemetry.NextStream()
		}
		p.out = queue.Instrument(p.out, p.stream, "pipe")
		cProducersStarted.Inc()
		gProducersActive.Add(1)
	}
	src, out, stream := p.src, p.out, p.stream
	go func() {
		var startTime time.Time
		var produced int64
		if observed {
			startTime = time.Now()
			defer func() {
				gProducersActive.Add(-1)
				telemetry.EmitSpan(stream, telemetry.KindProducer, "pipe", produced, startTime)
			}()
		}
		// An Icon runtime error raised inside the piped expression must
		// not crash the host: record it, fail the consumer side.
		defer func() {
			if r := recover(); r != nil {
				p.mu.Lock()
				if re, ok := r.(*value.RuntimeError); ok {
					p.err = re
				} else {
					p.err = fmt.Errorf("pipe: producer panic: %v", r)
				}
				p.mu.Unlock()
				if observed {
					cPipeErrors.Inc()
				}
				out.Close()
			}
		}()
		for {
			v, ok := src.Step(value.NullV)
			if !ok {
				break
			}
			if v == nil {
				v = value.NullV
			}
			if out.Put(value.Deref(v)) != nil {
				return // consumer stopped the pipe
			}
			if observed {
				produced++
				cPipeValues.Inc()
			}
		}
		out.Close()
	}()
}

// Err reports the runtime error that terminated the producer, if any. A
// pipe whose expression raised an error fails from the consumer's point of
// view; Err distinguishes that from ordinary exhaustion.
func (p *Pipe) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// StartEager spawns the producer immediately instead of on first Next —
// used by map-reduce, where all task pipes must run concurrently from the
// moment they are created (Figure 4's every-loop spawns them all before any
// result is consumed).
func (p *Pipe) StartEager() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		p.start()
	}
}

// Next takes the next produced value from the queue, failing when the
// producer has iterated its co-expression to failure. The @ operation on a
// pipe "is out.take()" (§3B).
func (p *Pipe) Next() (value.V, bool) {
	p.mu.Lock()
	if !p.started {
		p.start()
	}
	out := p.out
	p.mu.Unlock()
	v, err := out.Take()
	if err != nil {
		return nil, false
	}
	p.mu.Lock()
	p.results++
	p.mu.Unlock()
	return v, true
}

// Restart stops the current producer and arranges for a fresh one over a
// refreshed co-expression on the next Next.
func (p *Pipe) Restart() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		p.out.Close()
		p.started = false
		p.src = p.src.Refresh()
	}
	p.results = 0
}

// Stop terminates the producer without restarting; further Nexts fail until
// Restart. Safe to call at any time.
func (p *Pipe) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		// Arrange for Next to fail immediately rather than spawn.
		p.out = p.mkQueue()
		p.out.Close()
		p.started = true
		return
	}
	p.out.Close()
}

// Out exposes the transport queue — the paper makes the BlockingQueue "a
// public field to permit further manipulation". It is nil until the
// producer starts.
func (p *Pipe) Out() queue.Queue[value.V] {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out
}

// Step implements the activation operator @ on the pipe.
func (p *Pipe) Step(value.V) (value.V, bool) { return p.Next() }

// Refresh implements ^ on the pipe: a new proxy over a refreshed
// co-expression.
func (p *Pipe) Refresh() core.Stepper {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		p.out.Close()
	}
	return &Pipe{src: p.src.Refresh(), mkQueue: p.mkQueue}
}

// Stream reports the pipe's telemetry stream ID — 0 unless the producer
// started while telemetry was active.
func (p *Pipe) Stream() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stream
}

// Size reports the number of results taken so far (*P).
func (p *Pipe) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.results
}

// Type returns "co-expression": a pipe is a proxy for one.
func (p *Pipe) Type() string { return "co-expression" }

// Image identifies the value as a pipe.
func (p *Pipe) Image() string { return "pipe" }

// First runs the pipe as a future: it takes the first result and stops the
// producer. ok is false when the piped expression failed without a result.
func (p *Pipe) First() (value.V, bool) {
	v, ok := p.Next()
	p.Stop()
	return v, ok
}

// Chain builds a parallel pipeline: stage i+1 consumes the promoted output
// of the pipe around stage i. Each stage is a function from an input
// generator to an output generator; the returned generator produces the
// final stage's results while every stage runs in its own goroutine.
func Chain(src core.Gen, buffer int, stages ...func(core.Gen) core.Gen) core.Gen {
	g := src
	for _, stage := range stages {
		g = stage(core.Bang(FromGen(g, buffer)))
	}
	return g
}
