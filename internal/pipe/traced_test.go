package pipe

import (
	"testing"

	"junicon/internal/core"
	"junicon/internal/telemetry"
	"junicon/internal/value"
)

// TestTracedChainConcurrent exercises trace emission under real
// concurrency: a 3-stage Chain runs each stage in its own producer
// goroutine, every stage instrumented, with metrics and the trace ring
// both live. Under -race this is the tier-1 guarantee that the telemetry
// path — ring writes, counter ticks, per-queue instrumentation — is safe
// when many goroutines observe at once.
func TestTracedChainConcurrent(t *testing.T) {
	telemetry.ResetMetrics()
	telemetry.SetMetrics(true)
	telemetry.StartTrace(1 << 14)
	defer func() {
		telemetry.SetMetrics(false)
		telemetry.StopTrace()
	}()

	inc := func(label string) func(core.Gen) core.Gen {
		return func(in core.Gen) core.Gen {
			return core.Instrument(label, core.Op1(func(v value.V) value.V {
				return value.Add(v, value.NewInt(1))
			}, in))
		}
	}
	const n = 500
	g := Chain(core.IntRange(1, n), 8, inc("s1"), inc("s2"), inc("s3"))
	got := core.Drain(g, 0)
	if len(got) != n {
		t.Fatalf("drained %d values, want %d", len(got), n)
	}
	for i, v := range got {
		if mustInt(t, v) != int64(i+4) {
			t.Fatalf("value %d = %v, want %d", i, v, i+4)
		}
	}

	// Every stage must have emitted its yields on its own stream.
	streams := map[string]map[uint64]int{}
	for _, ev := range telemetry.DrainTrace() {
		if ev.Kind == telemetry.KindYield {
			if streams[ev.Name] == nil {
				streams[ev.Name] = map[uint64]int{}
			}
			streams[ev.Name][ev.Stream]++
		}
	}
	for _, label := range []string{"s1", "s2", "s3"} {
		byStream := streams[label]
		if len(byStream) != 1 {
			t.Fatalf("stage %s yielded on %d streams, want 1", label, len(byStream))
		}
		for _, count := range byStream {
			if count != n {
				t.Errorf("stage %s yields = %d, want %d", label, count, n)
			}
		}
	}

	// The three inter-stage queues ran instrumented: every value crossed
	// each of them exactly once.
	snap := telemetry.Snapshot()
	if puts := snap["queue.puts"].(int64); puts < 3*n {
		t.Errorf("queue.puts = %d, want >= %d", puts, 3*n)
	}
	if started := snap["pipe.producers_started"].(int64); started != 3 {
		t.Errorf("pipe.producers_started = %d, want 3", started)
	}
	if active := snap["pipe.producers_active"].(int64); active != 0 {
		t.Errorf("pipe.producers_active = %d after drain, want 0", active)
	}
}

func mustInt(t *testing.T, v value.V) int64 {
	t.Helper()
	i, ok := value.ToInteger(value.Deref(v))
	if !ok {
		t.Fatalf("not an integer: %v", v)
	}
	n, _ := i.Int64()
	return n
}
