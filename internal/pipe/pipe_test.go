package pipe

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"junicon/internal/coexpr"
	"junicon/internal/core"
	"junicon/internal/queue"
	"junicon/internal/value"
)

func intVal(v value.V) int64 {
	i, _ := value.ToInteger(v)
	n, _ := i.Int64()
	return n
}

func intsOf(vs []value.V) []int64 {
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = intVal(v)
	}
	return out
}

func TestPipeEquivalentToSequentialEvaluation(t *testing.T) {
	// |>e produces the same sequence as e, just in another thread.
	direct := core.Drain(core.IntRange(1, 50), 0)
	piped := core.Drain(FromGen(core.IntRange(1, 50), 8), 0)
	if len(direct) != len(piped) {
		t.Fatalf("lengths differ: %d vs %d", len(direct), len(piped))
	}
	for i := range direct {
		if intVal(direct[i]) != intVal(piped[i]) {
			t.Fatalf("at %d: %v vs %v", i, direct[i], piped[i])
		}
	}
}

func TestPropPipePreservesSequence(t *testing.T) {
	f := func(bs []byte, buf uint8) bool {
		if len(bs) > 40 {
			bs = bs[:40]
		}
		vs := make([]value.V, len(bs))
		for i, b := range bs {
			vs[i] = value.NewInt(int64(b))
		}
		p := FromGen(core.Values(vs...), int(buf%8)+1)
		got := core.Drain(p, 0)
		if len(got) != len(vs) {
			return false
		}
		for i := range got {
			if intVal(got[i]) != int64(bs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestProducerRunsConcurrently(t *testing.T) {
	// With a buffer of 4 the producer can run ahead of the consumer.
	var produced atomic.Int32
	g := core.NewGen(func(yield func(core.V) bool) {
		for i := 0; i < 4; i++ {
			produced.Add(1)
			if !yield(value.NewInt(int64(i))) {
				return
			}
		}
	})
	p := FromGen(g, 4)
	v, ok := p.Next()
	if !ok || intVal(v) != 0 {
		t.Fatalf("first = %v", v)
	}
	// Producer should fill the buffer without further Nexts.
	deadline := time.After(time.Second)
	for produced.Load() < 4 {
		select {
		case <-deadline:
			t.Fatalf("producer did not run ahead: produced=%d", produced.Load())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	core.Drain(p, 0)
}

func TestBufferBoundThrottlesProducer(t *testing.T) {
	// With an MVar-like buffer of 1, the producer cannot run more than one
	// element ahead (plus the one in flight inside Step).
	var produced atomic.Int32
	g := core.NewGen(func(yield func(core.V) bool) {
		for i := 0; i < 100; i++ {
			produced.Add(1)
			if !yield(value.NewInt(int64(i))) {
				return
			}
		}
	})
	p := FromGen(g, 1)
	p.Next() // start producer, take one
	time.Sleep(20 * time.Millisecond)
	if n := produced.Load(); n > 3 {
		t.Fatalf("producer ran %d elements ahead despite buffer 1", n)
	}
	p.Stop()
}

func TestPipeOverCoExpressionShadowsEnvironment(t *testing.T) {
	x := value.NewCell(value.NewInt(5))
	c := coexpr.New([]value.V{x.Get()}, func(env []*value.Var) core.Gen {
		return core.Defer(func() core.Gen { return core.Unit(env[0].Get()) })
	})
	x.Set(value.NewInt(999)) // mutate after creation
	p := New(c, 1)
	v, ok := p.Next()
	if !ok || intVal(v) != 5 {
		t.Fatalf("pipe saw mutated local: %v", value.Image(v))
	}
	p.Stop()
}

func TestFirstActsAsFuture(t *testing.T) {
	p := FromGen(core.IntRange(42, 100), 1)
	v, ok := p.First()
	if !ok || intVal(v) != 42 {
		t.Fatalf("future = %v %v", v, ok)
	}
	// After First the pipe is stopped; Next fails.
	if _, ok := p.Next(); ok {
		t.Fatal("stopped pipe must fail")
	}
}

func TestFutureOfFailingExpression(t *testing.T) {
	p := FromGen(core.Empty(), 1)
	if _, ok := p.First(); ok {
		t.Fatal("future of failing expression must fail")
	}
}

func TestStopBeforeStart(t *testing.T) {
	p := FromGen(core.IntRange(1, 10), 4)
	p.Stop()
	if _, ok := p.Next(); ok {
		t.Fatal("Next after pre-start Stop must fail")
	}
}

func TestRestartRespawnsProducer(t *testing.T) {
	p := FromGen(core.IntRange(1, 3), 2)
	first := intsOf(core.Drain(p, 0))
	p.Restart()
	second := intsOf(core.Drain(p, 0))
	if len(first) != 3 || len(second) != 3 || second[0] != 1 {
		t.Fatalf("first=%v second=%v", first, second)
	}
}

func TestRefreshYieldsIndependentPipe(t *testing.T) {
	p := FromGen(core.IntRange(1, 5), 2)
	p.Next()
	p.Next()
	fresh := p.Refresh().(*Pipe)
	v, ok := fresh.Next()
	if !ok || intVal(v) != 1 {
		t.Fatalf("refreshed pipe should rewind: %v", value.Image(v))
	}
	fresh.Stop()
}

func TestStepperProtocolOnPipe(t *testing.T) {
	p := FromGen(core.IntRange(7, 9), 2)
	v, ok := core.Step(p, value.NullV)
	if !ok || intVal(v) != 7 {
		t.Fatalf("@pipe = %v", v)
	}
	rest := intsOf(core.Drain(core.Bang(p), 0))
	if len(rest) != 2 || rest[0] != 8 {
		t.Fatalf("!pipe = %v", rest)
	}
	if p.Size() != 3 {
		t.Fatalf("*pipe = %d", p.Size())
	}
	if p.Type() != "co-expression" {
		t.Fatalf("type = %s", p.Type())
	}
}

func TestOutExposesQueue(t *testing.T) {
	p := FromGen(core.IntRange(1, 2), 2)
	if p.Out() != nil {
		t.Fatal("queue should not exist before start")
	}
	p.Next()
	q := p.Out()
	if q == nil || q.Cap() != 2 {
		t.Fatalf("exposed queue: %v", q)
	}
	core.Drain(p, 0)
}

func TestNewWithQueueSynchronousHandoff(t *testing.T) {
	src := core.NewFirstClass(core.IntRange(1, 5))
	p := NewWithQueue(src, func() queue.Queue[value.V] { return queue.NewSynchronous[value.V]() })
	got := intsOf(core.Drain(p, 0))
	if len(got) != 5 || got[4] != 5 {
		t.Fatalf("rendezvous pipe = %v", got)
	}
}

func TestParallelPipelineExpression(t *testing.T) {
	// x * !(|> factorial(!(|> sqrt-ish(y)))) — the paper's pipelining shape:
	// two stages chained with pipes, consumed by the surrounding expression.
	squares := core.Op1(func(v value.V) value.V { return value.Mul(v, v) }, core.IntRange(1, 5))
	stage2 := FromGen(squares, 2)
	plusOne := core.Op1(func(v value.V) value.V { return value.Add(v, value.NewInt(1)) }, core.Bang(stage2))
	final := FromGen(plusOne, 2)
	got := intsOf(core.Drain(final, 0))
	want := []int64{2, 5, 10, 17, 26}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pipeline = %v, want %v", got, want)
		}
	}
}

func TestChainHelper(t *testing.T) {
	doubled := func(in core.Gen) core.Gen {
		return core.Op1(func(v value.V) value.V { return value.Mul(v, value.NewInt(2)) }, in)
	}
	add10 := func(in core.Gen) core.Gen {
		return core.Op1(func(v value.V) value.V { return value.Add(v, value.NewInt(10)) }, in)
	}
	g := Chain(core.IntRange(1, 4), 2, doubled, add10)
	got := intsOf(core.Drain(g, 0))
	want := []int64{12, 14, 16, 18}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain = %v", got)
		}
	}
}

func TestManyConcurrentPipes(t *testing.T) {
	// Stress: a fleet of pipes all producing concurrently.
	const n = 32
	pipes := make([]*Pipe, n)
	for i := range pipes {
		lo := int64(i * 10)
		pipes[i] = FromGen(core.IntRange(lo, lo+9), 3)
	}
	for i, p := range pipes {
		got := intsOf(core.Drain(p, 0))
		if len(got) != 10 || got[0] != int64(i*10) {
			t.Fatalf("pipe %d = %v", i, got)
		}
	}
}

func TestProducerErrorDoesNotCrashAndIsReported(t *testing.T) {
	// A runtime error inside the piped expression (1/0) fails the pipe
	// and surfaces through Err instead of crashing the process.
	bad := core.Op1(func(v value.V) value.V {
		return value.Div(v, value.NewInt(0))
	}, core.IntRange(1, 3))
	p := FromGen(bad, 2)
	if _, ok := p.Next(); ok {
		t.Fatal("pipe over erroring expression should fail")
	}
	err := p.Err()
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestProducerForeignPanicIsContained(t *testing.T) {
	g := core.NewGen(func(yield func(core.V) bool) {
		yield(value.NewInt(1))
		panic("boom")
	})
	p := FromGen(g, 1)
	v, ok := p.Next()
	if !ok || intVal(v) != 1 {
		t.Fatalf("first = %v %v", v, ok)
	}
	for {
		if _, ok := p.Next(); !ok {
			break
		}
	}
	if err := p.Err(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestHealthyPipeReportsNoError(t *testing.T) {
	p := FromGen(core.IntRange(1, 3), 2)
	core.Drain(p, 0)
	if err := p.Err(); err != nil {
		t.Fatalf("unexpected err: %v", err)
	}
}

func TestNoGoroutineLeakAfterStopAndDrain(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		// Drained pipes: producer exits after closing the queue.
		core.Drain(FromGen(core.IntRange(1, 20), 4), 0)
		// Stopped pipes: producer blocked on a full queue must be released
		// by the close.
		p := FromGen(core.IntRange(1, 1000), 1)
		p.Next()
		p.Stop()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines before=%d after=%d: producer leak", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStopUnblocksProducerBlockedOnFullQueue is the regression test the
// remote server's stream cancellation relies on: a producer parked inside
// Put on a full queue must be released — not leaked — by Stop's close.
func TestStopUnblocksProducerBlockedOnFullQueue(t *testing.T) {
	before := runtime.NumGoroutine()
	var steps atomic.Int64
	p := FromGen(core.NewGen(func(yield func(value.V) bool) {
		for i := 0; ; i++ {
			steps.Add(1)
			if !yield(value.NewInt(int64(i))) {
				return
			}
		}
	}), 2)
	p.StartEager()

	// The producer fills the buffer (2) and blocks in Put with one value
	// in hand: exactly 3 steps, then it must make no further progress.
	deadline := time.Now().Add(2 * time.Second)
	for steps.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("producer took %d steps, never reached the full queue", steps.Load())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if got := steps.Load(); got != 3 {
		t.Fatalf("producer took %d steps against a full buffer of 2, want exactly 3", got)
	}

	// Stop closes the queue; the blocked Put returns ErrClosed and the
	// producer goroutine exits without stepping the source again.
	p.Stop()
	deadline = time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines before=%d after=%d: Stop left the producer blocked",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := steps.Load(); got != 3 {
		t.Fatalf("producer stepped the source after Stop (%d steps)", got)
	}
	// Already-buffered values stay drainable after Stop, but the stream
	// must end — bounded by the buffer, never replenished.
	for i := 0; i < 3; i++ {
		if _, ok := p.Next(); !ok {
			return
		}
	}
	t.Fatal("stopped pipe kept producing past its buffered values")
}
