package pipe

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"junicon/internal/core"
	"junicon/internal/value"
)

// countingGen yields 0,1,2,… forever, counting how many values the
// producer pulled from it.
func countingGen(steps *atomic.Int64) core.Gen {
	return core.NewGen(func(yield func(value.V) bool) {
		for i := 0; ; i++ {
			steps.Add(1)
			if !yield(value.NewInt(int64(i))) {
				return
			}
		}
	})
}

// waitSteps blocks until the producer has taken at least n source steps.
func waitSteps(t *testing.T, steps *atomic.Int64, n int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for steps.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("producer took %d steps, want >= %d", steps.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitGoroutines waits for the goroutine count to drop back near base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines base=%d now=%d: producer leaked", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFirstStopsEagerProducer: First is Next+Stop, and that must hold when
// the pipe was started eagerly — the future takes its single value and the
// producer, already running and blocked on the bounded queue, is released
// rather than leaked.
func TestFirstStopsEagerProducer(t *testing.T) {
	before := runtime.NumGoroutine()
	var steps atomic.Int64
	p := FromGen(countingGen(&steps), 1)
	p.StartEager()
	waitSteps(t, &steps, 2) // one value queued, one in hand, blocked in Put

	v, ok := p.First()
	if !ok || intVal(value.Deref(v)) != 0 {
		t.Fatalf("First = %v %v, want 0 true", v, ok)
	}
	waitGoroutines(t, before)
	// No further source progress after release: the producer unwound.
	n := steps.Load()
	time.Sleep(20 * time.Millisecond)
	if got := steps.Load(); got != n {
		t.Fatalf("producer advanced from %d to %d after First", n, got)
	}
	assertStoppedSoon(t, p, 4)
}

// assertStoppedSoon drains a stopped pipe: values already committed to the
// (now closed) transport queue may still arrive, but Next must fail within
// that bounded leftover — it may never block or keep producing.
func assertStoppedSoon(t *testing.T, p *Pipe, bound int) {
	t.Helper()
	for i := 0; i <= bound; i++ {
		if _, ok := p.Next(); !ok {
			return
		}
	}
	t.Fatalf("stopped pipe still producing after %d values", bound)
}

// TestFirstReleasesBlockedBatchedProducer extends the Stop-unblocks
// regression to the batch flush path: with batch > buffer the eager
// producer fills a whole run and blocks inside its flush PutBatch; First
// must take one value and release it.
func TestFirstReleasesBlockedBatchedProducer(t *testing.T) {
	before := runtime.NumGoroutine()
	var steps atomic.Int64
	p := FromGenBatched(countingGen(&steps), 2, 4)
	p.StartEager()
	// The producer accumulates a full run of 4, then its flush delivers 2
	// into the bounded queue and blocks for space: exactly 4 steps.
	waitSteps(t, &steps, 4)
	time.Sleep(20 * time.Millisecond)
	if got := steps.Load(); got != 4 {
		t.Fatalf("producer took %d steps against buffer 2 batch 4, want exactly 4", got)
	}

	v, ok := p.First()
	if !ok || intVal(value.Deref(v)) != 0 {
		t.Fatalf("First = %v %v, want 0 true", v, ok)
	}
	waitGoroutines(t, before)
	assertStoppedSoon(t, p, 8)
}

// TestStopReleasesProducerMidFlush: Stop with no Next at all — the closed
// queue must abort the in-flight PutBatch (partial delivery discarded with
// the run, mirroring the unbatched producer's in-hand value).
func TestStopReleasesProducerMidFlush(t *testing.T) {
	before := runtime.NumGoroutine()
	var steps atomic.Int64
	p := FromGenBatched(countingGen(&steps), 1, 8)
	p.StartEager()
	waitSteps(t, &steps, 8)
	p.Stop()
	waitGoroutines(t, before)
	assertStoppedSoon(t, p, 10)
}
