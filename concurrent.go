package junicon

import (
	"junicon/internal/coexpr"
	"junicon/internal/core"
	"junicon/internal/mapreduce"
	"junicon/internal/pipe"
	"junicon/internal/pool"
	"junicon/internal/queue"
	"junicon/internal/value"
)

// The calculus of concurrent generators (Figure 1):
//
//	<> e   first-class generator            FirstClass
//	|<> e  co-expression (shadowed env)     NewCoExpr
//	|> e   generator proxy in a thread      NewPipe / PipeOf
//	@ c    step one iteration               Step
//	! c    promote back to a generator      Bang
//	^ c    restart with a fresh env copy    Refresh

// Stepper is a first-class iterator value: first-class generators,
// co-expressions and pipes all implement it.
type Stepper = core.Stepper

// CoExpr is a co-expression: a first-class iterator over a shadowed copy
// of its creation environment.
type CoExpr = coexpr.CoExpr

// Pipe is a generator proxy running its co-expression in a separate
// goroutine, communicating through a bounded blocking queue.
type Pipe = pipe.Pipe

// FirstClass lifts an expression into a first-class iterator value (<>e).
func FirstClass(g Gen) Stepper { return core.NewFirstClass(g) }

// NewCoExpr creates a co-expression (|<>e): locals' current values are
// copied now, and build receives fresh reified variables initialized from
// that snapshot on first activation and after each Refresh — mutations
// never cross the boundary (§3A).
func NewCoExpr(locals []Value, build func(env []*Var) Gen) *CoExpr {
	return coexpr.New(locals, build)
}

// SimpleCoExpr creates a co-expression with no referenced locals.
func SimpleCoExpr(build func() Gen) *CoExpr { return coexpr.Simple(build) }

// NewPipe creates a generator proxy (|>e) over a first-class iterator,
// transporting results through a bounded blocking queue of the given size
// (<= 0 selects the default of 1024; 1 yields future/M-var behaviour and
// maximally throttles the producer, §3B).
func NewPipe(src Stepper, buffer int) *Pipe { return pipe.New(src, buffer) }

// PipeOf spawns a pipe over a plain generator: |>e over <>e.
func PipeOf(g Gen, buffer int) *Pipe { return pipe.FromGen(g, buffer) }

// NewBatchedPipe creates a pipe that moves results through its queue in
// runs of up to batch with a Nagle-style adaptive flush: full runs are
// flushed in one queue operation, while a waiting consumer receives the
// partial run immediately, so slow generators keep per-value latency.
// batch <= 1 behaves exactly like NewPipe. Observable semantics (ordering,
// failure propagation, Stop/Restart) are identical to NewPipe; the
// producer may run ahead by up to buffer+batch values.
func NewBatchedPipe(src Stepper, buffer, batch int) *Pipe {
	return pipe.NewBatched(src, buffer, batch)
}

// BatchedPipeOf spawns a batched pipe over a plain generator.
func BatchedPipeOf(g Gen, buffer, batch int) *Pipe {
	return pipe.FromGenBatched(g, buffer, batch)
}

// Step activates a first-class iterator value (@c), optionally
// transmitting a value into it.
func Step(c Value, transmit Value) (Value, bool) { return core.Step(c, transmit) }

// Bang promotes a first-class iterator value back into a generator (!c).
func Bang(s Stepper) Gen { return core.Bang(s) }

// Refresh restarts a first-class iterator over a fresh copy of its
// environment (^c), returning the refreshed iterator.
func Refresh(c Value) Value { return core.Refresh(c) }

// Pipeline chains stages into a parallel pipeline: each stage transforms a
// generator, and a pipe is spun between consecutive stages so every stage
// runs in its own goroutine (§3B's fixed-code decomposition, Figure 2).
func Pipeline(src Gen, buffer int, stages ...func(Gen) Gen) Gen {
	return pipe.Chain(src, buffer, stages...)
}

// BatchedPipeline is Pipeline with batched transport between stages.
func BatchedPipeline(src Gen, buffer, batch int, stages ...func(Gen) Gen) Gen {
	return pipe.ChainBatched(src, buffer, batch, stages...)
}

// Future evaluates g in a separate goroutine and returns a handle to its
// first result — "a singleton piped iterator that produces one result
// forms a future" (§3B).
func Future(g Gen) *Pipe { return pipe.FromGen(g, 1) }

// DataParallel is the map-reduce abstraction of Figure 4, built entirely
// from concurrent generators: the source is chunked, each chunk is mapped
// and reduced in its own pipe, and per-chunk results stream back in order.
type DataParallel struct {
	cfg mapreduce.Config
}

// NewDataParallel mirrors `new DataParallel(chunkSize)` from Figure 3.
func NewDataParallel(chunkSize int) DataParallel {
	return DataParallel{cfg: mapreduce.New(chunkSize)}
}

// WithBuffer bounds each task pipe's output queue.
func (d DataParallel) WithBuffer(n int) DataParallel {
	d.cfg.Buffer = n
	return d
}

// WithWorkers runs the per-chunk tasks on a dedicated pool of n workers
// created per drive cycle, instead of the shared process-wide pool.
func (d DataParallel) WithWorkers(n int) DataParallel {
	d.cfg.Workers = n
	return d
}

// WithWindow bounds the number of in-flight chunk tasks (default 2× the
// pool's worker count): chunks are pulled from the source and spawned as
// earlier tasks are drained, so memory stays O(window·chunkSize) even for
// unbounded sources.
func (d DataParallel) WithWindow(n int) DataParallel {
	d.cfg.Window = n
	return d
}

// OnPool runs the per-chunk tasks on an existing pool. The pool is never
// shut down by the scheduler.
func (d DataParallel) OnPool(p *Pool) DataParallel {
	d.cfg.Pool = p
	return d
}

// MapReduce maps callable f over the results of generator function s,
// reducing each chunk with callable r from init in its own pipe; the
// returned generator produces per-chunk reduced results in chunk order.
func (d DataParallel) MapReduce(f, s, r Value, init Value) Gen {
	return d.cfg.MapReduce(f, s, r, init)
}

// MapFlat maps f over s in concurrent per-chunk pipes but splits out the
// reduction: mapped elements stream back flattened, in order (§VII's
// data-parallel variant).
func (d DataParallel) MapFlat(f, s Value) Gen { return d.cfg.MapFlat(f, s) }

// Chunk partitions the results of stepping e into lists of at most size
// elements — Figure 4's chunk generator.
func Chunk(e Stepper, size int) Gen { return mapreduce.Chunk(e, size) }

// Pool is a fixed-size worker pool. Pipes placed on a pool with
// Pipe.OnPool reuse its worker goroutines instead of spawning one per
// producer, and DataParallel schedules its chunk tasks on one (§5D's
// thread-pool management).
type Pool = pool.Pool

// NewPool returns a pool of n workers; n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool { return pool.New(n) }

// BlockingQueue is a bounded FIFO blocking queue of values — the transport
// underneath pipes, exposed for direct coordination (§3B exposes the
// queue "to permit further manipulation").
type BlockingQueue = queue.ArrayBlocking[value.V]

// NewBlockingQueue returns a bounded blocking queue of values.
func NewBlockingQueue(capacity int) *BlockingQueue {
	return queue.NewArrayBlocking[value.V](capacity)
}
