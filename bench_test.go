// Benchmarks regenerating the paper's evaluation (see EXPERIMENTS.md):
//
//   - BenchmarkFig6_* — one benchmark per bar of Figure 6: {Lightweight,
//     Heavyweight} × {Junicon, Go} × {Sequential, Pipeline, DataParallel,
//     MapReduce}, the go-test counterpart of `go run ./cmd/fig6`.
//   - BenchmarkFig2_* — the pipeline vs data-parallel decomposition of
//     Figure 2 on one workload.
//   - BenchmarkAblation* — the ablations indexed in DESIGN.md: pipe-buffer
//     throttling (B), chunk size (C), and interpreted vs translated
//     embedding (D).
//   - BenchmarkKernel* / BenchmarkQueue* — supporting microbenchmarks for
//     the substrate costs discussed in §5B (zero-cost suspend, queue ops).
package junicon_test

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"junicon"
	"junicon/internal/core"
	"junicon/internal/interp"
	"junicon/internal/pipe"
	"junicon/internal/queue"
	"junicon/internal/remote"
	"junicon/internal/value"
	"junicon/internal/wordcount"
)

var (
	corpusOnce  sync.Once
	lightCorpus []string
	heavyCorpus []string
)

func corpora() ([]string, []string) {
	corpusOnce.Do(func() {
		lightCorpus = wordcount.GenerateLines(200, 10, 1)
		heavyCorpus = wordcount.GenerateLines(25, 10, 1)
	})
	return lightCorpus, heavyCorpus
}

func embCfg(lines []string) wordcount.EmbeddedConfig {
	chunk := len(lines) / 8
	if chunk < 1 {
		chunk = 1
	}
	return wordcount.EmbeddedConfig{ChunkSize: chunk}
}

// ---- Figure 6, lightweight ----

func BenchmarkFig6_Light_Junicon_Sequential(b *testing.B) {
	lines, _ := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconSequential(lines, wordcount.Light, embCfg(lines))
	}
}

func BenchmarkFig6_Light_Junicon_Pipeline(b *testing.B) {
	lines, _ := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconPipeline(lines, wordcount.Light, embCfg(lines))
	}
}

func BenchmarkFig6_Light_Junicon_DataParallel(b *testing.B) {
	lines, _ := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconDataParallel(lines, wordcount.Light, embCfg(lines))
	}
}

func BenchmarkFig6_Light_Junicon_MapReduce(b *testing.B) {
	lines, _ := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconMapReduce(lines, wordcount.Light, embCfg(lines))
	}
}

func BenchmarkFig6_Light_Go_Sequential(b *testing.B) {
	lines, _ := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.NativeSequential(lines, wordcount.Light)
	}
}

func BenchmarkFig6_Light_Go_Pipeline(b *testing.B) {
	lines, _ := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.NativePipeline(lines, wordcount.Light, wordcount.NativeConfig{})
	}
}

func BenchmarkFig6_Light_Go_DataParallel(b *testing.B) {
	lines, _ := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.NativeDataParallel(lines, wordcount.Light, wordcount.NativeConfig{})
	}
}

func BenchmarkFig6_Light_Go_MapReduce(b *testing.B) {
	lines, _ := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.NativeMapReduce(lines, wordcount.Light, wordcount.NativeConfig{})
	}
}

// ---- Figure 6, heavyweight ----

func BenchmarkFig6_Heavy_Junicon_Sequential(b *testing.B) {
	_, lines := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconSequential(lines, wordcount.Heavy, embCfg(lines))
	}
}

func BenchmarkFig6_Heavy_Junicon_Pipeline(b *testing.B) {
	_, lines := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconPipeline(lines, wordcount.Heavy, embCfg(lines))
	}
}

func BenchmarkFig6_Heavy_Junicon_DataParallel(b *testing.B) {
	_, lines := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconDataParallel(lines, wordcount.Heavy, embCfg(lines))
	}
}

func BenchmarkFig6_Heavy_Junicon_MapReduce(b *testing.B) {
	_, lines := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconMapReduce(lines, wordcount.Heavy, embCfg(lines))
	}
}

func BenchmarkFig6_Heavy_Go_Sequential(b *testing.B) {
	_, lines := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.NativeSequential(lines, wordcount.Heavy)
	}
}

func BenchmarkFig6_Heavy_Go_Pipeline(b *testing.B) {
	_, lines := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.NativePipeline(lines, wordcount.Heavy, wordcount.NativeConfig{})
	}
}

func BenchmarkFig6_Heavy_Go_DataParallel(b *testing.B) {
	_, lines := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.NativeDataParallel(lines, wordcount.Heavy, wordcount.NativeConfig{})
	}
}

func BenchmarkFig6_Heavy_Go_MapReduce(b *testing.B) {
	_, lines := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.NativeMapReduce(lines, wordcount.Heavy, wordcount.NativeConfig{})
	}
}

// ---- Figure 2: pipeline vs data-parallel decomposition ----

func BenchmarkFig2_PipelineDecomposition(b *testing.B) {
	lines, _ := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconPipeline(lines, wordcount.Light, embCfg(lines))
	}
}

func BenchmarkFig2_DataParallelDecomposition(b *testing.B) {
	lines, _ := corpora()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconDataParallel(lines, wordcount.Light, embCfg(lines))
	}
}

// ---- Ablation B: pipe buffer bound as throttle (§3B) ----

func benchBuffer(b *testing.B, buf int) {
	lines, _ := corpora()
	cfg := wordcount.EmbeddedConfig{Buffer: buf}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconPipeline(lines, wordcount.Light, cfg)
	}
}

func BenchmarkAblationBuffer_1(b *testing.B)    { benchBuffer(b, 1) }
func BenchmarkAblationBuffer_4(b *testing.B)    { benchBuffer(b, 4) }
func BenchmarkAblationBuffer_64(b *testing.B)   { benchBuffer(b, 64) }
func BenchmarkAblationBuffer_1024(b *testing.B) { benchBuffer(b, 1024) }

// ---- Ablation C: map-reduce chunk size (Figure 4) ----

func benchChunk(b *testing.B, chunk int) {
	lines, _ := corpora()
	cfg := wordcount.EmbeddedConfig{ChunkSize: chunk}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconMapReduce(lines, wordcount.Light, cfg)
	}
}

func BenchmarkAblationChunk_10(b *testing.B)   { benchChunk(b, 10) }
func BenchmarkAblationChunk_50(b *testing.B)   { benchChunk(b, 50) }
func BenchmarkAblationChunk_200(b *testing.B)  { benchChunk(b, 200) }
func BenchmarkAblationChunk_1000(b *testing.B) { benchChunk(b, 1000) }

// ---- Ablation H: workers × window (pooled data-parallel scheduler) ----

func benchWindow(b *testing.B, workers, window int) {
	lines, _ := corpora()
	cfg := wordcount.EmbeddedConfig{ChunkSize: 10, Workers: workers, Window: window}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconMapReduce(lines, wordcount.Light, cfg)
	}
}

func BenchmarkAblationWindow_W2_Win1(b *testing.B)  { benchWindow(b, 2, 1) }
func BenchmarkAblationWindow_W2_Win4(b *testing.B)  { benchWindow(b, 2, 4) }
func BenchmarkAblationWindow_W2_Win16(b *testing.B) { benchWindow(b, 2, 16) }
func BenchmarkAblationWindow_W4_Win1(b *testing.B)  { benchWindow(b, 4, 1) }
func BenchmarkAblationWindow_W4_Win8(b *testing.B)  { benchWindow(b, 4, 8) }

// ---- Ablation D: interpreted vs translated embedding ----

func BenchmarkAblationInterp_Sequential(b *testing.B) {
	lines, _ := corpora()
	small := lines[:50]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wordcount.InterpretedSequential(small, wordcount.Light); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTranslated_Sequential(b *testing.B) {
	lines, _ := corpora()
	small := lines[:50]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconSequential(small, wordcount.Light, wordcount.EmbeddedConfig{})
	}
}

// ---- Ablation: facts-driven optimization on vs off (BENCH_analyze.json) ----
//
// Each pair runs one embedded workload through the interpreter with the
// interprocedural fact engine off (the seed behaviour) and on. The On
// lanes include the cost of computing facts per evaluation — the win has
// to pay for its own analysis. The differential suite (semtest's Fused
// lanes) pins that every pair produces identical traces; these pin what
// the optimization buys:
//
//   - Fig6HashPipe is the Figure 6 pipeline decomposition with the hash
//     stage in pure Junicon (stream of items |> light arithmetic hash,
//     drained): facts prove the producer pure, so the pipe inlines —
//     no goroutine, no queue round-trips.
//   - Product exercises prefix fusion over a surface product chain; the
//     pure ≤1-yield prefix evaluates once instead of per backtrack cycle.
//   - The Fig6WordCount/Fig6Pipeline lanes run Figure 3's mixed-language
//     program, whose host native stages are effect-opaque — no fast path
//     may engage — pinning that the optimizer does not regress the
//     workloads it cannot prove anything about.

func benchAnalyzeExpr(b *testing.B, expr string, optimize bool) {
	var opts []junicon.InterpOption
	if optimize {
		opts = append(opts, junicon.WithOptimize())
	}
	in := junicon.NewInterp(io.Discard, opts...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := in.EvalGen(expr)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := g.Next(); !ok {
				break
			}
		}
	}
}

const (
	hashPipeExpr     = `!(|> ((1 to 2000) * 31))`
	fusedProductExpr = `(2 * 3) & (4 + 5) & (1 to 20000)`
)

func BenchmarkAnalyzeFusion_Fig6HashPipe_Off(b *testing.B) { benchAnalyzeExpr(b, hashPipeExpr, false) }
func BenchmarkAnalyzeFusion_Fig6HashPipe_On(b *testing.B)  { benchAnalyzeExpr(b, hashPipeExpr, true) }

func BenchmarkAnalyzeFusion_Product_Off(b *testing.B) { benchAnalyzeExpr(b, fusedProductExpr, false) }
func BenchmarkAnalyzeFusion_Product_On(b *testing.B)  { benchAnalyzeExpr(b, fusedProductExpr, true) }

func benchAnalyzeWordCount(b *testing.B, pipeline, optimize bool) {
	lines, _ := corpora()
	small := lines[:50]
	var opts []interp.Option
	if optimize {
		opts = append(opts, interp.WithOptimize())
	}
	// Load once, evaluate per iteration — the embedding steady state. The
	// On lane still pays the incremental per-eval analysis of each parsed
	// expression; only the whole-program fixpoint is amortized into setup.
	in, err := wordcount.NewInterpreter(small, wordcount.Light, opts...)
	if err != nil {
		b.Fatal(err)
	}
	expr := wordcount.SequentialExpr
	if pipeline {
		expr = wordcount.PipelineExpr
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wordcount.InterpSum(in, expr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeFusion_Fig6WordCount_Off(b *testing.B) {
	benchAnalyzeWordCount(b, false, false)
}
func BenchmarkAnalyzeFusion_Fig6WordCount_On(b *testing.B) {
	benchAnalyzeWordCount(b, false, true)
}
func BenchmarkAnalyzeFusion_Fig6Pipeline_Off(b *testing.B) {
	benchAnalyzeWordCount(b, true, false)
}
func BenchmarkAnalyzeFusion_Fig6Pipeline_On(b *testing.B) {
	benchAnalyzeWordCount(b, true, true)
}

// ---- Kernel and substrate microbenchmarks ----

func BenchmarkKernelProduct(b *testing.B) {
	g := core.Product(core.IntRange(1, 100), core.IntRange(1, 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.Count(g)
	}
}

func BenchmarkKernelSuspendResume(b *testing.B) {
	// The cost of suspend/resume in a generator function (§5B's
	// "zero cost for suspends" claim, here coroutine-based).
	g := core.NewGen(func(yield func(core.V) bool) {
		for {
			if !yield(value.IntV(1)) {
				return
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
	b.StopTimer()
	g.Restart()
}

func BenchmarkKernelPipeThroughput(b *testing.B) {
	lines := int64(b.N)
	p := junicon.PipeOf(junicon.Range(1, lines, 1), 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Next(); !ok {
			break
		}
	}
	b.StopTimer()
	p.Stop()
}

// BenchmarkKernelPipeThroughputBatched is the batched counterpart of
// BenchmarkKernelPipeThroughput: same source, same buffer, values moved in
// runs of 64 (the acceptance target is ≥3× over the per-value transport).
func BenchmarkKernelPipeThroughputBatched(b *testing.B) {
	lines := int64(b.N)
	p := junicon.BatchedPipeOf(junicon.Range(1, lines, 1), 256, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Next(); !ok {
			break
		}
	}
	b.StopTimer()
	p.Stop()
}

// ---- Ablation G: pipe batch size (local transport) ----

func benchPipeBatch(b *testing.B, batch int) {
	lines := int64(b.N)
	p := junicon.BatchedPipeOf(junicon.Range(1, lines, 1), 1024, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Next(); !ok {
			break
		}
	}
	b.StopTimer()
	p.Stop()
}

func BenchmarkAblationPipeBatch_1(b *testing.B)   { benchPipeBatch(b, 1) }
func BenchmarkAblationPipeBatch_8(b *testing.B)   { benchPipeBatch(b, 8) }
func BenchmarkAblationPipeBatch_64(b *testing.B)  { benchPipeBatch(b, 64) }
func BenchmarkAblationPipeBatch_512(b *testing.B) { benchPipeBatch(b, 512) }

// ---- Ablation G: batch size over the remote transport (loopback TCP) ----

var (
	remoteBenchOnce sync.Once
	remoteBenchAddr string
)

// remoteBenchServer starts one loopback server shared by the remote-batch
// sweep, serving the same integer range the local sweep streams.
func remoteBenchServer(b *testing.B) string {
	b.Helper()
	remoteBenchOnce.Do(func() {
		s := remote.NewServer()
		s.Register("range", func(args []value.V) (core.Gen, error) {
			lo := int64(value.MustInt(args[0]))
			hi := int64(value.MustInt(args[1]))
			return core.IntRange(lo, hi), nil
		})
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		remoteBenchAddr = addr.String()
	})
	return remoteBenchAddr
}

// benchRemoteBatch streams b.N integers over loopback TCP with the given
// VALUES-frame batch capability. Batch 1 negotiates the pre-batching
// per-value protocol, so it doubles as the before/after baseline.
func benchRemoteBatch(b *testing.B, batch int) {
	addr := remoteBenchServer(b)
	p := remote.Open(addr, "range",
		[]value.V{value.NewInt(1), value.NewInt(int64(b.N))},
		remote.Config{Buffer: 1024, Batch: batch})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Next(); !ok {
			b.Fatalf("remote pipe ended after %d of %d values: %v", i, b.N, p.Err())
		}
	}
	b.StopTimer()
	p.Stop()
}

func BenchmarkAblationRemoteBatch_1(b *testing.B)   { benchRemoteBatch(b, 1) }
func BenchmarkAblationRemoteBatch_8(b *testing.B)   { benchRemoteBatch(b, 8) }
func BenchmarkAblationRemoteBatch_64(b *testing.B)  { benchRemoteBatch(b, 64) }
func BenchmarkAblationRemoteBatch_512(b *testing.B) { benchRemoteBatch(b, 512) }

func BenchmarkQueuePutTake(b *testing.B) {
	q := queue.NewArrayBlocking[int](64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := q.Take(); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Put(i)
	}
	b.StopTimer()
	q.Close()
	<-done
}

func BenchmarkInterpEvalExpression(b *testing.B) {
	in := junicon.NewInterp(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := in.Eval("(1 to 10) + (1 to 10)", 0); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation E: pipe transport queue type ----

func benchQueueType(b *testing.B, mk func() queue.Queue[value.V]) {
	lines, _ := corpora()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A single pipeline stage over the chosen transport.
		src := core.NewFirstClass(core.IntRange(1, 2000))
		p := pipe.NewWithQueue(src, mk)
		core.Drain(p, 0)
	}
	_ = lines
}

func BenchmarkAblationQueueArray(b *testing.B) {
	benchQueueType(b, func() queue.Queue[value.V] { return queue.NewArrayBlocking[value.V](64) })
}

func BenchmarkAblationQueueLinked(b *testing.B) {
	benchQueueType(b, func() queue.Queue[value.V] { return queue.NewLinkedBlocking[value.V](64) })
}

func BenchmarkAblationQueueSynchronous(b *testing.B) {
	benchQueueType(b, func() queue.Queue[value.V] { return queue.NewSynchronous[value.V]() })
}

func BenchmarkKernelScanTokenize(b *testing.B) {
	in := junicon.NewInterp(nil)
	if err := in.LoadProgram(`
def tokens(s) {
  s ? {
    while not pos(0) do {
      tab(many(' '));
      if pos(0) then break;
      w := tab(many(&letters ++ &digits)) | move(1);
      suspend w;
    };
  };
}`); err != nil {
		b.Fatal(err)
	}
	g, err := in.EvalGen(`tokens("the quick brown fox 42 jumps over 13 lazy dogs")`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Count(g) // auto-restarts each cycle
	}
}

// ---- Compiled execution: bytecode vm vs tree walk vs translation ----
//
// The BenchmarkVM* lanes feed BENCH_vm.json (regenerate with
// `go test -bench 'BenchmarkVM' -benchmem . | go run ./cmd/benchjson
// -o BENCH_vm.json`). Each workload runs under the tree-walking
// evaluator and under WithVM — identical programs, identical traces
// (the semtest Compiled lanes pin that) — so the pair isolates what
// compiling to slot-framed bytecode buys. The Fig6 lanes add the
// translated kernel composition as the ceiling: ahead-of-time Go
// emission with no interpreter in the loop.
//
// Two regimes matter. The Fig6 word-count lanes are the paper's
// embedded workload, dominated by host native calls — the vm only
// accelerates the generator plumbing between natives. The drain lanes
// (Primes, EveryLoop, Product, Calls) are pure Junicon, where
// evaluator overhead is the whole cost and the vm's win is starkest.

// benchVMDrain loads a program once, builds one generator for expr, and
// drains it per iteration — generators auto-restart after exhaustion, so
// each iteration replays the full sequence. This is the evaluator
// steady state: no parse or compile inside the loop on either side.
func benchVMDrain(b *testing.B, program, expr string, vm bool) {
	var opts []junicon.InterpOption
	if vm {
		opts = append(opts, junicon.WithVM())
	}
	in := junicon.NewInterp(io.Discard, opts...)
	if program != "" {
		if err := in.LoadProgram(program); err != nil {
			b.Fatal(err)
		}
	}
	g, err := in.EvalGen(expr)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Count(g)
	}
}

const vmPrimesProgram = `
def isprime(n) {
  if n < 2 then fail;
  every d := 2 to n-1 do { if not (n % d ~= 0) then fail };
  return n;
}
def primesBelow(limit) {
  suspend isprime(2 to limit);
}`

func BenchmarkVMPrimes_TreeWalk(b *testing.B) {
	benchVMDrain(b, vmPrimesProgram, `primesBelow(200)`, false)
}
func BenchmarkVMPrimes_VM(b *testing.B) {
	benchVMDrain(b, vmPrimesProgram, `primesBelow(200)`, true)
}

func BenchmarkVMEveryLoop_TreeWalk(b *testing.B) {
	benchVMDrain(b, "", `{ t := 0; every t +:= (1 to 2000); t }`, false)
}
func BenchmarkVMEveryLoop_VM(b *testing.B) {
	benchVMDrain(b, "", `{ t := 0; every t +:= (1 to 2000); t }`, true)
}

func BenchmarkVMProduct_TreeWalk(b *testing.B) {
	benchVMDrain(b, "", `(1 to 60) * (1 to 60)`, false)
}
func BenchmarkVMProduct_VM(b *testing.B) {
	benchVMDrain(b, "", `(1 to 60) * (1 to 60)`, true)
}

const vmCallsProgram = `def double(x) { return x * 2; }`

func BenchmarkVMCalls_TreeWalk(b *testing.B) {
	benchVMDrain(b, vmCallsProgram, `double(1 to 2000)`, false)
}
func BenchmarkVMCalls_VM(b *testing.B) {
	benchVMDrain(b, vmCallsProgram, `double(1 to 2000)`, true)
}

// benchVMWordCount is the Figure 3 embedding steady state (load once,
// evaluate per iteration), as in benchAnalyzeWordCount, with compiled
// execution toggled. The vm lane pays expression compilation inside the
// loop — the win has to carry its own lowering cost, as the embedding
// would experience it.
func benchVMWordCount(b *testing.B, pipeline, vm bool) {
	lines, _ := corpora()
	small := lines[:50]
	var opts []interp.Option
	if vm {
		opts = append(opts, interp.WithVM())
	}
	in, err := wordcount.NewInterpreter(small, wordcount.Light, opts...)
	if err != nil {
		b.Fatal(err)
	}
	expr := wordcount.SequentialExpr
	if pipeline {
		expr = wordcount.PipelineExpr
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wordcount.InterpSum(in, expr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVMFig6_WordCount_TreeWalk(b *testing.B) { benchVMWordCount(b, false, false) }
func BenchmarkVMFig6_WordCount_VM(b *testing.B)       { benchVMWordCount(b, false, true) }

// The pipeline pair pins that compiled generators feed the pipe/thread
// machinery unchanged — the vm frame is just another Gen behind |>.
func BenchmarkVMFig6_Pipeline_TreeWalk(b *testing.B) { benchVMWordCount(b, true, false) }
func BenchmarkVMFig6_Pipeline_VM(b *testing.B)       { benchVMWordCount(b, true, true) }

// BenchmarkVMFig6_WordCount_Translated is the ceiling: the same workload
// as ahead-of-time translated kernel compositions, no interpreter at all.
func BenchmarkVMFig6_WordCount_Translated(b *testing.B) {
	lines, _ := corpora()
	small := lines[:50]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wordcount.JuniconSequential(small, wordcount.Light, wordcount.EmbeddedConfig{})
	}
}

// ---- multiplexed session benchmarks (Ablation L) ----
//
// benchMuxedLifecycle measures the full many-stream lifecycle: one
// iteration opens `streams` concurrent remote generators, drains a few
// values from each, and tears everything down. Streams are deliberately
// short — the session pool's economics live in the per-stream setup cost
// (dial, socket, handshake, read loop), so the benchmark models the
// many-short-streams storm that junistorm drives at scale; long streams
// amortize setup and converge toward the shared wire's throughput. mux=true routes every
// stream through one pooled Dialer (streamsPerConn caps sharing;
// 0 = DefaultStreamsPerConn), mux=false dials one classic connection per
// stream — the pre-v5 economics the session protocol exists to beat. The
// headline comparison is BenchmarkMuxedRemote_256 against
// BenchmarkMuxedRemotePerConn_256: identical work, ~5× apart, because
// the muxed side pays 1 dial, 1 socket and 1 read loop where the classic
// side pays 256 of each.

var (
	muxBenchOnce sync.Once
	muxBenchAddr string
)

// muxBenchServer serves the mux benchmarks; unlike remoteBenchServer it
// lifts MaxConns, since the per-conn baseline needs hundreds of
// concurrent dedicated connections.
func muxBenchServer(b *testing.B) string {
	b.Helper()
	muxBenchOnce.Do(func() {
		s := remote.NewServer()
		s.MaxConns = 8192
		s.Register("range", func(args []value.V) (core.Gen, error) {
			lo := int64(value.MustInt(args[0]))
			hi := int64(value.MustInt(args[1]))
			return core.IntRange(lo, hi), nil
		})
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		muxBenchAddr = addr.String()
	})
	return muxBenchAddr
}

func benchMuxedLifecycle(b *testing.B, streams, streamsPerConn int, mux bool) {
	addr := muxBenchServer(b)
	const vals = 5 // short streams: the lifecycle-storm workload junistorm models
	cfg := remote.Config{Buffer: 64}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var d *remote.Dialer
		if mux {
			d = &remote.Dialer{StreamsPerConn: streamsPerConn}
		}
		var wg sync.WaitGroup
		var short atomic.Int64
		for i := 0; i < streams; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				args := []value.V{value.NewInt(1), value.NewInt(int64(vals))}
				var p *remote.RemotePipe
				if mux {
					p = d.Open(addr, "range", args, cfg)
				} else {
					p = remote.Open(addr, "range", args, cfg)
				}
				defer p.Stop()
				for j := 0; j < vals; j++ {
					if _, ok := p.Next(); !ok {
						short.Add(1)
						return
					}
				}
			}()
		}
		wg.Wait()
		if mux {
			d.Close()
		}
		if c := short.Load(); c != 0 {
			b.Fatalf("%d of %d streams ended early", c, streams)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(streams*vals)*float64(b.N)/b.Elapsed().Seconds(), "values/s")
}

// The headline pair: 256 concurrent streams, shared sessions vs one
// connection per stream.
func BenchmarkMuxedRemote_256(b *testing.B)         { benchMuxedLifecycle(b, 256, 0, true) }
func BenchmarkMuxedRemotePerConn_256(b *testing.B)  { benchMuxedLifecycle(b, 256, 0, false) }
func BenchmarkMuxedRemote_1024(b *testing.B)        { benchMuxedLifecycle(b, 1024, 0, true) }
func BenchmarkMuxedRemotePerConn_1024(b *testing.B) { benchMuxedLifecycle(b, 1024, 0, false) }

// The streams-per-conn sweep (Ablation L): 256 streams at caps 1, 16 and
// 4096. Cap 1 is the degenerate case — session framing with none of the
// sharing; cap 4096 collapses onto one connection exactly like the
// default 256.
func BenchmarkMuxedRemoteStreamsPerConn_1(b *testing.B)    { benchMuxedLifecycle(b, 256, 1, true) }
func BenchmarkMuxedRemoteStreamsPerConn_16(b *testing.B)   { benchMuxedLifecycle(b, 256, 16, true) }
func BenchmarkMuxedRemoteStreamsPerConn_4096(b *testing.B) { benchMuxedLifecycle(b, 256, 4096, true) }

// The single-stream case bounds the mux tax when there is nothing to
// share: one stream over a session vs one stream over a dedicated
// connection should be within noise of each other.
func BenchmarkMuxedRemoteSingle(b *testing.B) { benchMuxedLifecycle(b, 1, 0, true) }
