module junicon

go 1.24
