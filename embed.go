package junicon

import (
	"fmt"
	"io"
	"strings"

	"junicon/internal/interp"
	"junicon/internal/meta"
	"junicon/internal/translate"
)

// Mixed-language embedding (§4): scoped annotations delimit Junicon
// regions inside a host-language file; the metaparser extracts them
// without parsing the host grammar; regions are interpreted (or
// translated) and host text passes through untouched.

// Interp is a Junicon interpreter instance: global scope, builtin library
// and native-function registry.
type Interp = interp.Interp

// InterpOption configures an interpreter built by NewInterp.
type InterpOption = interp.Option

// WithOptimize enables facts-driven evaluation: the interpreter computes
// interprocedural generator facts over loaded programs and uses them to
// fuse pure single-yield product prefixes, inline statically pure pipes
// and size pipe buffers from yield bounds. Semantically a no-op — the
// differential suite pins optimized traces to the unoptimized reference.
func WithOptimize() InterpOption { return interp.WithOptimize() }

// WithVM enables compiled execution: loaded procedures and evaluated
// expressions run as slot-framed bytecode on the vm package's stack
// machine where the compiler supports them, falling back to the tree walk
// where it does not. Like WithOptimize, semantically a no-op — the semtest
// Compiled lanes pin compiled traces to the sequential reference.
func WithVM() InterpOption { return interp.WithVM() }

// NewInterp returns an interpreter with the builtin library loaded; output
// of write()/writes() goes to w (nil selects standard output).
func NewInterp(w io.Writer, opts ...InterpOption) *Interp {
	if w != nil {
		opts = append([]InterpOption{interp.WithOutput(w)}, opts...)
	}
	return interp.New(opts...)
}

// Region is a scoped annotation found in a mixed-language source.
type Region = meta.Region

// ParseMixed decomposes a mixed-language source into host text and scoped
// annotation regions.
func ParseMixed(src string) ([]meta.Segment, error) { return meta.Parse(src) }

// Regions returns the top-level annotation regions of a mixed source.
func Regions(segs []meta.Segment) []*Region { return meta.Regions(segs) }

// RenderMixed reassembles a mixed source, transforming each region with tr
// (nil reproduces the original text).
func RenderMixed(segs []meta.Segment, tr func(*Region) (string, error)) (string, error) {
	return meta.Render(segs, tr)
}

// LoadMixed extracts every @<script lang="junicon"> region from a
// mixed-language source and loads it into the interpreter: declarations
// are defined, top-level statements executed. Host text and regions in
// other languages are ignored (they belong to the host toolchain).
func LoadMixed(in *Interp, src string) error {
	segs, err := meta.Parse(src)
	if err != nil {
		return err
	}
	return loadRegions(in, segs)
}

func loadRegions(in *Interp, segs []meta.Segment) error {
	for _, r := range meta.Regions(segs) {
		if !isJunicon(r) {
			continue
		}
		// Nested host regions inside a junicon region are not executable
		// here; reject rather than silently dropping code.
		for _, inner := range meta.Regions(r.Segments) {
			if !isJunicon(inner) {
				return fmt.Errorf("junicon: region at line %d nests a %q region; nested host regions require the translator", r.Line, inner.Lang())
			}
		}
		if err := in.LoadProgram(r.Raw); err != nil {
			return fmt.Errorf("junicon: region at line %d: %w", r.Line, err)
		}
	}
	return nil
}

func isJunicon(r *Region) bool {
	lang := strings.ToLower(r.Lang())
	return lang == "junicon" || lang == "unicon" || lang == "icon"
}

// TranslateOptions configures code generation.
type TranslateOptions = translate.Options

// Translate emits Go source for a Junicon program — the migration of §5,
// producing code in the image of Figure 5 (reified parameters, shadowed
// co-expression environments, compositions of kernel constructors).
func Translate(src string, opts TranslateOptions) (string, error) {
	return translate.TranslateProgram(src, opts)
}

// TranslateMixed translates every junicon region of a mixed-language
// source into one Go file (regions are concatenated in order, as they
// share one global scope).
func TranslateMixed(src string, opts TranslateOptions) (string, error) {
	segs, err := meta.Parse(src)
	if err != nil {
		return "", err
	}
	var program strings.Builder
	for _, r := range meta.Regions(segs) {
		if isJunicon(r) {
			program.WriteString(r.Raw)
			program.WriteString("\n")
		}
	}
	return translate.TranslateProgram(program.String(), opts)
}
