package junicon_test

import (
	"bytes"
	"strings"
	"testing"

	"junicon"
)

func images(vs []junicon.Value) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = junicon.Image(v)
	}
	return out
}

func TestQuickstartPrimeMultiples(t *testing.T) {
	in := junicon.NewInterp(nil)
	if err := in.LoadProgram(`
def isprime(n) {
  if n < 2 then fail;
  every d := 2 to n-1 do { if not (n % d ~= 0) then fail };
  return n;
}`); err != nil {
		t.Fatal(err)
	}
	vs, err := in.Eval("(1 to 2) * isprime(4 to 7)", 0)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(images(vs), " ")
	if got != "5 7 10 14" {
		t.Fatalf("prime multiples = %s", got)
	}
}

func TestKernelCombinatorsViaFacade(t *testing.T) {
	g := junicon.Product(junicon.Range(1, 2, 1),
		junicon.Map(junicon.Range(10, 12, 1), func(v junicon.Value) junicon.Value {
			n, _ := junicon.ToInt(v)
			return junicon.Int(n * 2)
		}))
	vs := junicon.Drain(g, 0)
	if len(vs) != 6 {
		t.Fatalf("product cardinality = %d", len(vs))
	}
	if junicon.Count(junicon.Alt(junicon.Ints(1, 2), junicon.Ints(3))) != 3 {
		t.Fatal("alt")
	}
	if junicon.Count(junicon.Limit(junicon.RepeatAlt(junicon.Ints(1)), 5)) != 5 {
		t.Fatal("limit/repeat")
	}
	v, ok := junicon.First(junicon.Filter(junicon.Range(1, 10, 1), func(v junicon.Value) bool {
		n, _ := junicon.ToInt(v)
		return n > 7
	}))
	if !ok || junicon.Image(v) != "8" {
		t.Fatalf("filter first = %v", v)
	}
}

func TestCalculusViaFacade(t *testing.T) {
	// <>e, @c, !c, ^c.
	c := junicon.FirstClass(junicon.Range(1, 3, 1))
	v, ok := junicon.Step(c, junicon.Null())
	if !ok || junicon.Image(v) != "1" {
		t.Fatalf("@c = %v", v)
	}
	rest := junicon.Drain(junicon.Bang(c), 0)
	if len(rest) != 2 {
		t.Fatalf("!c = %v", images(rest))
	}
	fresh := junicon.Refresh(c)
	v, _ = junicon.Step(fresh, junicon.Null())
	if junicon.Image(v) != "1" {
		t.Fatalf("^c rewinds: %v", v)
	}
}

func TestPipelineViaFacade(t *testing.T) {
	dbl := func(in junicon.Gen) junicon.Gen {
		return junicon.Map(in, func(v junicon.Value) junicon.Value {
			n, _ := junicon.ToInt(v)
			return junicon.Int(n * 2)
		})
	}
	g := junicon.Pipeline(junicon.Range(1, 4, 1), 2, dbl, dbl)
	vs := images(junicon.Drain(g, 0))
	if strings.Join(vs, " ") != "4 8 12 16" {
		t.Fatalf("pipeline = %v", vs)
	}
}

func TestFutureViaFacade(t *testing.T) {
	f := junicon.Future(junicon.Range(42, 99, 1))
	v, ok := f.First()
	if !ok || junicon.Image(v) != "42" {
		t.Fatalf("future = %v", v)
	}
}

func TestMapReduceViaFacade(t *testing.T) {
	square := junicon.Proc("square", 1, func(a []junicon.Value) junicon.Value {
		n, _ := junicon.ToInt(a[0])
		return junicon.Int(n * n)
	})
	src := junicon.GenProc("src", 0, func(_ []junicon.Value, yield func(junicon.Value) bool) {
		for i := int64(1); i <= 10; i++ {
			if !yield(junicon.Int(i)) {
				return
			}
		}
	})
	sum := junicon.Proc("sum", 2, func(a []junicon.Value) junicon.Value {
		x, _ := junicon.ToInt(a[0])
		y, _ := junicon.ToInt(a[1])
		return junicon.Int(x + y)
	})
	dp := junicon.NewDataParallel(3).WithBuffer(2)
	total := int64(0)
	junicon.Each(dp.MapReduce(square, src, sum, junicon.Int(0)), func(v junicon.Value) bool {
		n, _ := junicon.ToInt(v)
		total += n
		return true
	})
	if total != 385 {
		t.Fatalf("sum of squares = %d", total)
	}
}

func TestMixedLanguageEmbedding(t *testing.T) {
	mixed := `
package host

// Host Go code surrounds the embedded region.
@<script lang="junicon">
  def triple(x) { return x * 3; }
  def upTo(n) { suspend 1 to n; }
@</script>

func hostStuff() {}
`
	var out bytes.Buffer
	in := junicon.NewInterp(&out)
	if err := junicon.LoadMixed(in, mixed); err != nil {
		t.Fatal(err)
	}
	vs, err := in.Eval("triple(upTo(3))", 0)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(images(vs), " ") != "3 6 9" {
		t.Fatalf("mixed eval = %v", images(vs))
	}
	// Host text round-trips.
	segs, err := junicon.ParseMixed(mixed)
	if err != nil {
		t.Fatal(err)
	}
	back, err := junicon.RenderMixed(segs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back != mixed {
		t.Fatal("mixed source did not round-trip")
	}
	if len(junicon.Regions(segs)) != 1 {
		t.Fatal("region count")
	}
}

func TestNativeInterop(t *testing.T) {
	in := junicon.NewInterp(nil)
	in.RegisterNative("hostLen", func(args ...junicon.Value) (junicon.Value, error) {
		s, ok := junicon.ToStr(args[0])
		if !ok {
			return nil, nil
		}
		return junicon.Int(int64(len(s))), nil
	})
	v, ok, err := in.EvalFirst(`this::hostLen("hello")`)
	if err != nil || !ok || junicon.Image(v) != "5" {
		t.Fatalf("native = %v %v %v", v, ok, err)
	}
}

func TestTranslateViaFacade(t *testing.T) {
	out, err := junicon.Translate(`def f(x) { return x + 1; }`, junicon.TranslateOptions{Package: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "package p") || !strings.Contains(out, "P_f") {
		t.Fatalf("translation:\n%s", out)
	}
	mixed := `host { } @<script lang="junicon"> def g(y) { return y; } @</script>`
	out, err = junicon.TranslateMixed(mixed, junicon.TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "P_g") {
		t.Fatalf("mixed translation:\n%s", out)
	}
}

func TestErrorsSurface(t *testing.T) {
	in := junicon.NewInterp(nil)
	if _, err := in.Eval("1/0", 1); err == nil {
		t.Fatal("runtime error should surface")
	}
	var re *junicon.RuntimeError
	err := junicon.Protect(func() {
		junicon.Call(junicon.Str("not a proc"))
	})
	if err == nil {
		t.Fatal("Protect should catch kernel errors")
	}
	if !strings.Contains(err.Error(), "procedure") {
		t.Fatalf("err = %v", err)
	}
	_ = re
	if err := junicon.LoadMixed(in, `@<script lang="junicon"> def broken( { @</script>`); err == nil {
		t.Fatal("malformed region should error")
	}
	if err := junicon.LoadMixed(in, `@<script lang="junicon"> x := 1; @<script lang="go"> nope @</script> @</script>`); err == nil {
		t.Fatal("nested host region should be rejected by the interpreter path")
	}
}

func TestQueueExposed(t *testing.T) {
	q := junicon.NewBlockingQueue(2)
	if err := q.Put(junicon.Int(1)); err != nil {
		t.Fatal(err)
	}
	v, err := q.Take()
	if err != nil || junicon.Image(v) != "1" {
		t.Fatalf("queue = %v %v", v, err)
	}
}
