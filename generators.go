package junicon

import (
	"junicon/internal/core"
	"junicon/internal/value"
)

// Kernel combinators: the functional forms over which transformed
// generator expressions are composed (§5B). These are re-exported from the
// kernel so applications can build goal-directed computations directly,
// exactly as translated code does.

// Empty returns a generator with an empty result sequence (failure).
func Empty() Gen { return core.Empty() }

// Unit returns a singleton generator producing v.
func Unit(v Value) Gen { return core.Unit(v) }

// Seq returns a generator over the given values in order.
func Seq(vs ...Value) Gen { return core.Values(vs...) }

// Ints returns a generator over the given machine integers.
func Ints(is ...int64) Gen {
	vs := make([]Value, len(is))
	for i, n := range is {
		vs[i] = value.NewInt(n)
	}
	return core.Values(vs...)
}

// Strings returns a generator over the given strings.
func Strings(ss ...string) Gen {
	vs := make([]Value, len(ss))
	for i, s := range ss {
		vs[i] = value.String(s)
	}
	return core.Values(vs...)
}

// Range implements lo to hi by step (step 0 selects 1): the to-by
// generator.
func Range(lo, hi, step int64) Gen {
	if step == 0 {
		step = 1
	}
	return core.Range(value.NewInt(lo), value.NewInt(hi), value.NewInt(step))
}

// Product implements the iterator product e & e' — cross-product with
// conditional evaluation, the fundamental operator of goal-directed
// evaluation (§2A).
func Product(gens ...Gen) Gen { return core.Product(gens...) }

// Alt implements alternation e1 | e2 | …, the concatenation of result
// sequences.
func Alt(gens ...Gen) Gen { return core.Alt(gens...) }

// Limit implements limitation e \ n: at most n results per cycle.
func Limit(e Gen, n int) Gen { return core.Limit(e, n) }

// Bind implements bound iteration (v in e): each result is assigned to the
// reified variable before being yielded (§5A).
func Bind(v *Var, e Gen) Gen { return core.In(v, e) }

// Promote implements the ! operator over an operand generator: lists,
// strings, csets, tables, sets, records and first-class iterators are
// lifted to generators over their elements.
func Promote(e Gen) Gen { return core.Promote(e) }

// PromoteVal promotes a single value.
func PromoteVal(v Value) Gen { return core.PromoteVal(v) }

// RepeatAlt implements repeated alternation |e.
func RepeatAlt(e Gen) Gen { return core.RepeatAlt(e) }

// Map applies a Go function to each result of e (a singleton-result
// operation under operand search).
func Map(e Gen, f func(Value) Value) Gen { return core.Op1(f, e) }

// Filter keeps results of e for which pred returns true.
func Filter(e Gen, pred func(Value) bool) Gen {
	return core.Cmp1(func(v Value) (Value, bool) {
		if pred(v) {
			return v, true
		}
		return nil, false
	}, e)
}

// Invoke composes invocation over generator operands: the function
// position itself may be a generator, as in (f | g)(x) (§2A).
func Invoke(f Gen, args ...Gen) Gen { return core.Invoke(f, args...) }

// Call invokes a callable value on already-evaluated arguments.
func Call(f Value, args ...Value) Gen { return core.InvokeVal(f, args...) }

// NewGen builds a generator from a push-style body: yield each result;
// return to fail. Suspension is coroutine-based — no extra threads.
func NewGen(body func(yield func(Value) bool)) Gen { return core.NewGen(body) }

// Every drives e to failure, evaluating the bounded body for each result
// (the every construct; body may be nil).
func Every(e, body Gen) Gen { return core.Every(e, body) }

// Drain runs g to failure, collecting at most max results (max <= 0 means
// unbounded), dereferencing variables.
func Drain(g Gen, max int) []Value { return core.Drain(g, max) }

// First returns g's first result.
func First(g Gen) (Value, bool) { return core.First(g) }

// Each applies f to every result of g until failure or f returns false.
func Each(g Gen, f func(Value) bool) { core.Each(g, f) }

// Count drives g to failure and returns the number of results.
func Count(g Gen) int { return core.Count(g) }
