// Benchmarks for the durability layer (DESIGN.md Ablation K): the cost of
// capturing a suspended compiled generator into a snapshot blob, the cost
// of restoring one, and — the number a deployment actually tunes — the
// per-value throughput tax of interval checkpointing on a remote stream
// at increasing cadences. Interval 0 is the undisturbed baseline; interval
// 1 checkpoints after every delivered value, the worst case.
package junicon_test

import (
	"io"
	"sync"
	"testing"

	"junicon"
	"junicon/internal/checkpoint"
	"junicon/internal/remote"
)

// checkpointBenchProgram keeps a live child frame and a mutated global in
// the tower, so the capture walks the same shapes the round-trip tests pin.
const checkpointBenchProgram = `
global acc
def cgen(a, b) { suspend a to b; }
def csum(n) {
  acc := 0;
  every i := 1 to n do { acc := acc + i; suspend acc; };
}
`

// checkpointBenchGen compiles expr and drains cut values, returning the
// suspended generator mid-iteration.
func checkpointBenchGen(b *testing.B, expr string, cut int) junicon.Gen {
	b.Helper()
	in := junicon.NewInterp(io.Discard, junicon.WithVM())
	if err := in.LoadProgram(checkpointBenchProgram); err != nil {
		b.Fatal(err)
	}
	g, err := in.EvalGen(expr)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < cut; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatalf("generator exhausted after %d of %d values", i, cut)
		}
	}
	return g
}

// BenchmarkCheckpointSnapshot measures capturing a suspended two-frame
// tower (caller + live child) into a versioned checksummed blob.
func BenchmarkCheckpointSnapshot(b *testing.B) {
	g := checkpointBenchGen(b, "cgen(1, 1000000)", 7)
	meta := checkpoint.Meta{Program: checkpointBenchProgram, Expr: "cgen(1, 1000000)", Produced: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checkpoint.Snapshot(g, meta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointRestore measures rebuilding a resumable Machine from
// a blob — decode, verify, fingerprint-check, rehydrate the tower and the
// captured global cells.
func BenchmarkCheckpointRestore(b *testing.B) {
	g := checkpointBenchGen(b, "csum(1000000)", 9)
	blob, err := checkpoint.Snapshot(g, checkpoint.Meta{
		Program: checkpointBenchProgram, Expr: "csum(1000000)", Produced: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	in := junicon.NewInterp(io.Discard, junicon.WithVM())
	if err := in.LoadProgram(checkpointBenchProgram); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := in.RestoreSnapshot(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointResume measures the full recovery unit: restore the
// blob and deliver the next 100 values of the resumed sequence.
func BenchmarkCheckpointResume(b *testing.B) {
	g := checkpointBenchGen(b, "cgen(1, 1000000)", 7)
	blob, err := checkpoint.Snapshot(g, checkpoint.Meta{
		Program: checkpointBenchProgram, Expr: "cgen(1, 1000000)", Produced: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	in := junicon.NewInterp(io.Discard, junicon.WithVM())
	if err := in.LoadProgram(checkpointBenchProgram); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rg, _, err := in.RestoreSnapshot(blob)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			if _, ok := rg.Next(); !ok {
				b.Fatalf("resumed generator exhausted after %d values", j)
			}
		}
	}
}

var (
	ckptBenchOnce sync.Once
	ckptBenchAddr string
)

// ckptBenchServer serves vetted source streams over loopback for the
// interval ablation; shared across the sweep like remoteBenchServer.
func ckptBenchServer(b *testing.B) string {
	b.Helper()
	ckptBenchOnce.Do(func() {
		s := remote.NewServer()
		s.AllowSource = true
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		ckptBenchAddr = addr.String()
	})
	return ckptBenchAddr
}

// benchCheckpointInterval streams b.N values of a compiled source
// generator over loopback TCP, checkpointing every `every` values (0 =
// checkpointing off). The delta against interval 0 is the durability tax.
func benchCheckpointInterval(b *testing.B, every int) {
	addr := ckptBenchServer(b)
	p := remote.OpenSource(addr, "def cgen(a, b) { suspend a to b; }",
		"cgen(1, 1000000000)", nil,
		remote.Config{Buffer: 1024, CheckpointEvery: every})
	defer p.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.Next(); !ok {
			b.Fatalf("remote pipe ended after %d of %d values: %v", i, b.N, p.Err())
		}
	}
	b.StopTimer()
	if every > 0 {
		if refusal := p.SnapshotRefusal(); refusal != "" {
			b.Fatalf("stream refused checkpointing: %s", refusal)
		}
	}
}

func BenchmarkAblationCheckpointInterval_0(b *testing.B)  { benchCheckpointInterval(b, 0) }
func BenchmarkAblationCheckpointInterval_1(b *testing.B)  { benchCheckpointInterval(b, 1) }
func BenchmarkAblationCheckpointInterval_8(b *testing.B)  { benchCheckpointInterval(b, 8) }
func BenchmarkAblationCheckpointInterval_64(b *testing.B) { benchCheckpointInterval(b, 64) }
