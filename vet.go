package junicon

import (
	"fmt"
	"io"

	"junicon/internal/analyze"
	"junicon/internal/meta"
	"junicon/internal/parser"
)

// Static checking: the analyzer of internal/analyze exposed over source
// text. Vet runs the same machinery that gates Translate and warns in the
// REPL, so embedders can check programs before loading them.

// Diag is one structured analyzer diagnostic.
type Diag = analyze.Diag

// DiagSeverity classifies a diagnostic as warning or error.
type DiagSeverity = analyze.Severity

// Diagnostic severities.
const (
	SeverityWarning = analyze.Warning
	SeverityError   = analyze.Error
)

// Vet parses a Junicon program and returns its static diagnostics sorted
// by position. known (may be nil) reports names the host binds before the
// program runs, suppressing never-assigned warnings for them.
func Vet(src string, known func(name string) bool) ([]Diag, error) {
	prog, err := parser.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return analyze.Program(prog, analyze.Options{Known: known}), nil
}

// Facts is the interprocedural fact table the analyzer computes alongside
// its diagnostics: per-procedure effect summaries, yield-count bounds,
// restartability and demandedness. The same table drives the evaluator's
// and translator's optimizations; Fdump renders it for inspection.
type Facts = analyze.Facts

// VetFacts is Vet plus the fact table: it parses a Junicon program and
// returns both the static diagnostics and the interprocedural generator
// facts the optimizer would act on (junicon -vet -facts).
func VetFacts(src string, known func(name string) bool) ([]Diag, *Facts, error) {
	prog, err := parser.ParseProgram(src)
	if err != nil {
		return nil, nil, err
	}
	diags, facts := analyze.ProgramFacts(prog, analyze.Options{Known: known})
	return diags, facts, nil
}

// VetExpr analyzes a standalone expression (the REPL's unit of input).
func VetExpr(expr string, known func(name string) bool) ([]Diag, error) {
	n, err := parser.ParseExpression(expr)
	if err != nil {
		return nil, err
	}
	return analyze.Expr(n, analyze.Options{Known: known}), nil
}

// VetMixed analyzes every junicon region of a mixed-language source.
// Diagnostic positions are shifted to whole-file line numbers.
func VetMixed(src string, known func(name string) bool) ([]Diag, error) {
	segs, err := meta.Parse(src)
	if err != nil {
		return nil, err
	}
	var out []Diag
	for _, r := range meta.Regions(segs) {
		if !isJunicon(r) {
			continue
		}
		prog, err := parser.ParseProgram(r.Raw)
		if err != nil {
			return out, fmt.Errorf("region at line %d: %w", r.Line, err)
		}
		for _, d := range analyze.Program(prog, analyze.Options{Known: known}) {
			// Raw begins on the open-tag line, so region line 1 is file
			// line r.Line.
			d.Pos.Line += r.Line - 1
			out = append(out, d)
		}
	}
	return out, nil
}

// HasVetErrors reports whether any diagnostic has error severity.
func HasVetErrors(diags []Diag) bool { return analyze.HasErrors(diags) }

// FprintDiags writes diagnostics one per line, prefixed with path when
// non-empty.
func FprintDiags(w io.Writer, path string, diags []Diag) {
	analyze.Fprint(w, path, 0, diags)
}
