// Package junicon is a Go implementation of concurrent generators and
// their mixed-language embedding, reproducing Mills & Jeffery, "Embedding
// Concurrent Generators" (IPDPS HIPS 2016).
//
// The library has three layers:
//
//  1. A goal-directed generator kernel: every expression is a suspendable,
//     failure-driven iterator (Gen); composition forms — Product (&),
//     Alt (|), Limit (\), In (bound iteration), Promote (!) — implement
//     Icon/Unicon's goal-directed evaluation over a dynamic value system
//     with arbitrary-precision integers, strings, csets, lists, tables,
//     sets and records.
//
//  2. The calculus of concurrent generators (the paper's Figure 1):
//     first-class generators (<>e, FirstClass), co-expressions that shadow
//     their environment (|<>e, NewCoExpr), and pipes — multithreaded
//     generator proxies communicating through blocking queues (|>e,
//     NewPipe) — with activation (@, Step), promotion (!, Bang) and
//     refresh (^, Refresh), plus higher-order abstractions (DataParallel
//     map-reduce) built from them.
//
//  3. Mixed-language embedding: scoped annotations (@<script
//     lang="junicon"> … @</script>) located by a host-grammar-oblivious
//     metaparser, an LL(k) parser for the Junicon subset, the §5A
//     normalization that flattens nested generators into products of bound
//     iterators, a tree-walking interpreter, and a translator emitting Go
//     in the image of the paper's Figure 5.
//
// # Quickstart
//
//	// (1 to 2) * isprime(4 to 7), the paper's running example:
//	in := junicon.NewInterp()
//	in.LoadProgram(`
//	  def isprime(n) {
//	    if n < 2 then fail;
//	    every d := 2 to n-1 do { if not (n % d ~= 0) then fail };
//	    return n;
//	  }`)
//	results, _ := in.Eval("(1 to 2) * isprime(4 to 7)", 0)
//	// results: 5, 7, 10, 14
//
// See the examples directory for pipelines, map-reduce and mixed-language
// embedding, and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package junicon

import (
	"junicon/internal/core"
	"junicon/internal/value"
)

// Value is a Unicon value: integer (arbitrary precision), real, string,
// cset, list, table, set, record, procedure, co-expression or null.
type Value = value.V

// Gen is the goal-directed iterator protocol: Next produces the next
// result or reports failure (ok == false); Restart rewinds. Iterators
// auto-restart after failure, enabling backtracking composition.
type Gen = value.Gen

// Var is a reified variable — an updatable reference with get/set
// closures (the paper's IconVar).
type Var = value.Var

// RuntimeError is an Icon runtime error (numeric expected, division by
// zero, …) surfaced as a Go error by the evaluation entry points.
type RuntimeError = value.RuntimeError

// ---- value constructors ----

// Int returns an integer value.
func Int(i int64) Value { return value.NewInt(i) }

// Real returns a real value.
func Real(f float64) Value { return value.Real(f) }

// Str returns a string value.
func Str(s string) Value { return value.String(s) }

// Null is the null value.
func Null() Value { return value.NullV }

// List is a Unicon list value.
type List = value.List

// Table is a Unicon table value.
type Table = value.Table

// Set is a Unicon set value.
type Set = value.Set

// NewList returns a list of the given elements.
func NewList(elems ...Value) *List { return value.NewList(elems...) }

// NewTable returns a table with the given default value for absent keys.
func NewTable(defval Value) *Table { return value.NewTable(defval) }

// NewSet returns a set of the given members.
func NewSet(members ...Value) *Set { return value.NewSet(members...) }

// NewCell returns a free-standing reified variable holding v.
func NewCell(v Value) *Var { return value.NewCell(v) }

// Proc wraps a Go function as a goal-directed procedure value: returning
// nil means failure, so host functions participate in backtracking search.
func Proc(name string, arity int, f func(args []Value) Value) Value {
	return core.ValProc(name, arity, f)
}

// GenProc wraps a push-style generator function as a procedure value — the
// analogue of a Unicon method containing suspend.
func GenProc(name string, arity int, body func(args []Value, yield func(Value) bool)) Value {
	return core.GenProc(name, arity, body)
}

// Image returns the image() form of a value.
func Image(v Value) string { return value.Image(v) }

// ToInt converts a value to an int64 under Icon coercion.
func ToInt(v Value) (int64, bool) {
	i, ok := value.ToInteger(v)
	if !ok {
		return 0, false
	}
	return i.Int64()
}

// ToFloat converts a value to a float64 under Icon coercion.
func ToFloat(v Value) (float64, bool) {
	r, ok := value.ToReal(v)
	return float64(r), ok
}

// ToStr converts a value to a string under Icon coercion.
func ToStr(v Value) (string, bool) {
	s, ok := value.ToString(v)
	return string(s), ok
}

// Protect runs f, converting an Icon runtime-error panic raised by kernel
// operations into an ordinary error.
func Protect(f func()) error { return core.Protect(f) }
