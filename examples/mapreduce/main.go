// Command mapreduce builds map-reduce from concurrent generators alone —
// the paper's Figure 4: the source stream is chunked, each chunk is mapped
// and reduced inside its own generator proxy (pipe), and the per-chunk
// partial results stream back in order for a final combine. The same
// computation is then repeated with the reduction split out (the
// data-parallel variant of §VII) and sequentially, to show all three
// agree.
package main

import (
	"fmt"
	"time"

	"junicon"
)

func main() {
	const n = 50_000
	const chunkSize = 5_000

	// The map function: a moderately expensive per-element computation
	// (digit-sum of n^3), exposed as a goal-directed procedure.
	mapF := junicon.Proc("digitCube", 1, func(a []junicon.Value) junicon.Value {
		x, _ := junicon.ToInt(a[0])
		c := x * x * x
		if c < 0 {
			c = -c
		}
		s := int64(0)
		for c > 0 {
			s += c % 10
			c /= 10
		}
		return junicon.Int(s)
	})

	// The source: a generator function producing 1..n.
	src := junicon.GenProc("source", 0, func(_ []junicon.Value, yield func(junicon.Value) bool) {
		for i := int64(1); i <= n; i++ {
			if !yield(junicon.Int(i)) {
				return
			}
		}
	})

	// The reduction function.
	sum := junicon.Proc("sum", 2, func(a []junicon.Value) junicon.Value {
		x, _ := junicon.ToInt(a[0])
		y, _ := junicon.ToInt(a[1])
		return junicon.Int(x + y)
	})

	dp := junicon.NewDataParallel(chunkSize)

	// 1. Map-reduce: per-chunk reduction inside pipes (Figure 4).
	start := time.Now()
	total := int64(0)
	chunks := 0
	junicon.Each(dp.MapReduce(mapF, src, sum, junicon.Int(0)), func(v junicon.Value) bool {
		partial, _ := junicon.ToInt(v)
		total += partial
		chunks++
		return true
	})
	fmt.Printf("map-reduce     total=%d  (%d chunk tasks, %v)\n",
		total, chunks, time.Since(start).Round(time.Millisecond))

	// 2. Data-parallel: mapped elements stream back flattened; the
	// reduction happens serially out here (§VII's fourth variant).
	start = time.Now()
	dpTotal := int64(0)
	junicon.Each(dp.MapFlat(mapF, src), func(v junicon.Value) bool {
		h, _ := junicon.ToInt(v)
		dpTotal += h
		return true
	})
	fmt.Printf("data-parallel  total=%d  (serial reduction, %v)\n",
		dpTotal, time.Since(start).Round(time.Millisecond))

	// 3. Sequential reference.
	start = time.Now()
	seqTotal := int64(0)
	junicon.Each(junicon.Invoke(junicon.Unit(mapF), junicon.Call(src)), func(v junicon.Value) bool {
		h, _ := junicon.ToInt(v)
		seqTotal += h
		return true
	})
	fmt.Printf("sequential     total=%d  (%v)\n", seqTotal, time.Since(start).Round(time.Millisecond))

	if total != seqTotal || dpTotal != seqTotal {
		fmt.Println("MISMATCH between variants!")
		return
	}
	fmt.Println("all three decompositions agree ✔")
}
