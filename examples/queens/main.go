// Command queens solves the n-queens problem in embedded Junicon — the
// canonical goal-directed backtracking program: the recursive generator
// place() suspends each complete placement and, when resumed, undoes its
// board mutations before trying the next row, so draining the generator
// enumerates every solution.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"junicon"
)

const program = `
global rows, up, down, q

def place(c, n) {
  if c > n then return copy(q);
  every r := 1 to n do {
    if /rows[r] then if /up[n+r-c] then if /down[r+c-1] then {
      rows[r] := 1; up[n+r-c] := 1; down[r+c-1] := 1; q[c] := r;
      suspend place(c+1, n);
      rows[r] := &null; up[n+r-c] := &null; down[r+c-1] := &null;
    };
  };
}

def queens(n) {
  rows := list(n); up := list(2*n-1); down := list(2*n-1); q := list(n);
  suspend place(1, n);
}
`

func main() {
	n := flag.Int("n", 6, "board size")
	show := flag.Int("show", 2, "how many boards to draw")
	flag.Parse()

	in := junicon.NewInterp(nil)
	if err := in.LoadProgram(program); err != nil {
		log.Fatal(err)
	}
	solutions, err := in.Eval(fmt.Sprintf("queens(%d)", *n), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d-queens: %d solutions\n", *n, len(solutions))
	for i, sol := range solutions {
		if i >= *show {
			break
		}
		board := sol.(*junicon.List)
		fmt.Printf("solution %d: %s\n", i+1, board.Image())
		for _, rv := range board.Elems() {
			r, _ := junicon.ToInt(rv)
			row := make([]string, *n)
			for c := range row {
				row[c] = "."
			}
			row[r-1] = "Q"
			fmt.Println("  " + strings.Join(row, " "))
		}
	}
}
