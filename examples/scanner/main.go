// Command scanner shows goal-directed string scanning — the application
// domain the paper singles out as Icon and Unicon's forte (§2A): a tiny
// tokenizer and a backtracking pattern search written as scanning
// expressions (s ? e), with the reversible matching functions tab and move
// undoing partial matches on failure.
package main

import (
	"fmt"
	"log"

	"junicon"
)

const program = `
# Tokenize an arithmetic expression by scanning.
def tokens(s) {
  s ? {
    while not pos(0) do {
      tab(many(' '));
      if pos(0) then break;
      w := tab(many(&digits)) | tab(many(&letters ++ &digits)) | move(1);
      suspend w;
    };
  };
}

# Find key=value pairs: the scan backtracks over candidate '=' positions.
def pairs(s) {
  s ? {
    while not pos(0) do {
      k := tab(upto('='));
      move(1);
      v := tab(upto(';') | 0);
      suspend k || ":" || v;
      move(1);
    };
  };
}
`

func main() {
	in := junicon.NewInterp(nil)
	if err := in.LoadProgram(program); err != nil {
		log.Fatal(err)
	}

	fmt.Println("tokens(\"x1 + 42*foo\"):")
	vs, err := in.Eval(`tokens("x1 + 42*foo")`, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range vs {
		fmt.Printf("  %s\n", junicon.Image(v))
	}

	fmt.Println(`pairs("host=alpha;port=80;mode=fast"):`)
	vs, err = in.Eval(`pairs("host=alpha;port=80;mode=fast")`, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range vs {
		fmt.Printf("  %s\n", junicon.Image(v))
	}

	// Backtracking inside one scan: find an 'l' that is followed by "lo" —
	// the first candidate fails, tab reverses &pos, upto resumes.
	v, ok, err := in.EvalFirst(`"hello" ? { tab(upto('l')) & tabMatch("lo") }`)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Printf("backtracking match in \"hello\": %s\n", junicon.Image(v))
	}
}
