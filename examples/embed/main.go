// Command embed runs the mixed-language WordCount of the paper's Figure 3:
// a host-language file (wordcount.gmix) carries embedded Junicon regions
// in scoped annotations; the metaparser extracts them, the interpreter
// loads them with the host hash stages registered as natives, and the
// pipeline expression of runPipeline is evaluated — host and embedded code
// calling back and forth seamlessly.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"math"
	"math/big"
	"strings"

	"junicon"
)

//go:embed wordcount.gmix
var mixedSource string

func main() {
	segs, err := junicon.ParseMixed(mixedSource)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixed source: %d embedded region(s) found\n", len(junicon.Regions(segs)))

	in := junicon.NewInterp(nil)

	// Host stages (Figure 3's public Java methods), exposed as natives.
	in.RegisterNative("wordToNumber", func(args ...junicon.Value) (junicon.Value, error) {
		s, ok := junicon.ToStr(args[0])
		if !ok {
			return nil, fmt.Errorf("wordToNumber: string expected")
		}
		n, ok := new(big.Int).SetString(strings.ToLower(s), 36)
		if !ok {
			return nil, nil // failure for non-base-36 words
		}
		return junicon.Str(n.String()), nil
	})
	in.RegisterNative("hashNumber", func(args ...junicon.Value) (junicon.Value, error) {
		f, ok := junicon.ToFloat(args[0])
		if !ok {
			return nil, fmt.Errorf("hashNumber: numeric expected")
		}
		return junicon.Real(math.Sqrt(f)), nil
	})
	in.RegisterNative("split", func(args ...junicon.Value) (junicon.Value, error) {
		s, _ := junicon.ToStr(args[0])
		out := junicon.NewList()
		for _, w := range strings.Fields(s) {
			out.Put(junicon.Str(w))
		}
		return out, nil
	})

	// The corpus, bound into the embedded program's global scope.
	corpus := junicon.NewList()
	for _, line := range []string{
		"goal directed evaluation combines generators with backtracking",
		"pipes are generator proxies over blocking queues",
		"scoped annotations embed one language in another",
	} {
		corpus.Put(junicon.Str(line))
	}
	in.Define("lines", corpus)

	// Load every junicon region from the mixed file.
	if err := junicon.LoadMixed(in, mixedSource); err != nil {
		log.Fatal(err)
	}

	// runPipeline (Figure 3): iterate the embedded pipeline expression
	// from the host for-loop, summing on the host side.
	g, err := in.EvalGen(`this::hashNumber( ! (|> this::wordToNumber(splitWords(readLines()))))`)
	if err != nil {
		log.Fatal(err)
	}
	total := 0.0
	words := 0
	junicon.Each(g, func(v junicon.Value) bool {
		f, _ := junicon.ToFloat(v)
		total += f
		words++
		return true
	})
	fmt.Printf("runPipeline: hashed %d words in parallel, total=%.4f\n", words, total)

	// And the per-line generator from the same embedded region.
	sums, err := in.Eval(`hashWords("uses suspend inside mixed code")`, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hashWords(...) generated %d word hashes\n", len(sums))

	// Show the translator output for the same region (first lines).
	goSrc, err := junicon.TranslateMixed(mixedSource, junicon.TranslateOptions{Package: "wordcount"})
	if err != nil {
		log.Fatal(err)
	}
	first := strings.SplitN(goSrc, "\n", 8)
	fmt.Println("translated to Go (head):")
	for _, l := range first[:7] {
		fmt.Println("  " + l)
	}
}
