// Command pipeline runs the WordCount program of the paper's Figure 3: a
// hash over lines of text computed by splitting lines into words,
// converting words to arbitrary-precision numbers, square-rooting, and
// summing — with the word→number stage spun off into a generator proxy so
// the two halves of the hash run in parallel (runPipeline), compared
// against the sequential evaluation of the same expression.
package main

import (
	"fmt"
	"log"
	"math"
	"math/big"
	"strings"
	"time"

	"junicon"
)

func main() {
	lines := []string{
		"the quick brown fox jumps over the lazy dog",
		"pack my box with five dozen liquor jugs",
		"how vexingly quick daft zebras jump",
		"sphinx of black quartz judge my vow",
	}

	in := junicon.NewInterp(nil)

	// Host-side (native Go) stages, registered for :: invocation — the
	// wordToNumber and hashNumber methods of Figure 3.
	in.RegisterNative("wordToNumber", func(args ...junicon.Value) (junicon.Value, error) {
		s, ok := junicon.ToStr(args[0])
		if !ok {
			return nil, fmt.Errorf("wordToNumber: string expected")
		}
		n, ok := new(big.Int).SetString(strings.ToLower(s), 36)
		if !ok {
			return nil, nil // native failure: skip non-base-36 words
		}
		return junicon.Str(n.String()), nil
	})
	in.RegisterNative("hashNumber", func(args ...junicon.Value) (junicon.Value, error) {
		f, ok := junicon.ToFloat(args[0])
		if !ok {
			return nil, fmt.Errorf("hashNumber: number expected")
		}
		return junicon.Real(math.Sqrt(f)), nil
	})
	in.RegisterNative("split", func(args ...junicon.Value) (junicon.Value, error) {
		s, _ := junicon.ToStr(args[0])
		words := junicon.NewList()
		for _, w := range strings.Fields(s) {
			words.Put(junicon.Str(w))
		}
		return words, nil
	})

	corpus := junicon.NewList()
	for _, l := range lines {
		corpus.Put(junicon.Str(l))
	}
	in.Define("lines", corpus)

	// The embedded methods of Figure 3.
	if err := in.LoadProgram(`
def readLines () { suspend !lines; }
def splitWords (line) { suspend !line::split(); }
`); err != nil {
		log.Fatal(err)
	}

	run := func(label, expr string) float64 {
		start := time.Now()
		g, err := in.EvalGen(expr)
		if err != nil {
			log.Fatal(err)
		}
		total := 0.0
		junicon.Each(g, func(v junicon.Value) bool {
			f, _ := junicon.ToFloat(v)
			total += f
			return true
		})
		fmt.Printf("%-32s total=%.4f  (%v)\n", label, total, time.Since(start).Round(time.Microsecond))
		return total
	}

	// Sequential: the whole hash inline.
	seq := run("sequential", `this::hashNumber(this::wordToNumber(splitWords(readLines())))`)
	// Pipeline: Figure 3's runPipeline — a pipe around the first stage.
	par := run("pipeline (|> proxy)", `this::hashNumber( ! (|> this::wordToNumber(splitWords(readLines()))))`)

	if math.Abs(seq-par) > 1e-9*math.Abs(seq) {
		log.Fatalf("pipeline result %v differs from sequential %v", par, seq)
	}
	fmt.Println("pipeline and sequential evaluation agree ✔")
}
