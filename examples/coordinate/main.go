// Command coordinate demonstrates the paper's coordination thesis: using
// concurrent generators "for high-level coordination as well as the
// prototyping and refinement of parallel programs" (§1) — the embedded
// program decides WHAT runs and in what order, while the computationally
// intensive pieces are host Go functions (§4: generators "coordinating
// more computationally intensive pieces encoded in languages such as
// Java", here Go).
//
// The scenario: a small build-like workflow. The embedded Junicon program
// walks a dependency list, fans independent jobs out through pipes (so the
// host functions run concurrently), and collects results in order.
package main

import (
	"fmt"
	"log"
	"strings"
	"sync/atomic"
	"time"

	"junicon"
)

// hostCompile is the "expensive" host-language work being coordinated.
var jobsRun atomic.Int32

func hostCompile(args ...junicon.Value) (junicon.Value, error) {
	name, ok := junicon.ToStr(args[0])
	if !ok {
		return nil, fmt.Errorf("compile: string expected")
	}
	time.Sleep(15 * time.Millisecond) // simulate real work
	jobsRun.Add(1)
	return junicon.Str(strings.ToUpper(name) + ".o"), nil
}

const workflow = `
# The coordination layer, written in goal-directed style. Each stage list
# holds jobs that are independent of one another; stages run in order.
def stages() {
  suspend ![
    ["parse", "lex", "ast"],
    ["types", "flatten"],
    ["emit"]
  ];
}

# Run one stage: spawn a pipe per job so the host compile() calls of the
# stage run concurrently, then collect the results (a join).
def runStage(jobs) {
  tasks := [];
  every j := !jobs do {
    put(tasks, |> this::compile(j));
  };
  every t := !tasks do {
    suspend @t;
  };
}

# The whole workflow: a generator of produced artifacts.
def workflowRun() {
  every s := stages() do {
    suspend runStage(s);
  };
}
`

func main() {
	in := junicon.NewInterp(nil)
	in.RegisterNative("compile", hostCompile)
	if err := in.LoadProgram(workflow); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	artifacts, err := in.Eval("workflowRun()", 0)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Println("artifacts produced (stage order preserved):")
	for _, a := range artifacts {
		fmt.Printf("  %s\n", junicon.Image(a))
	}
	fmt.Printf("%d host jobs coordinated in %v\n", jobsRun.Load(), elapsed.Round(time.Millisecond))

	// Sequential lower bound would be 6 × 15ms = 90ms; with pipes, jobs
	// inside a stage overlap (fully so on a multi-core host).
	fmt.Println("stage-parallel coordination: jobs within a stage ran in concurrent pipes")
}
