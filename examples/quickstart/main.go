// Command quickstart demonstrates goal-directed evaluation with the
// junicon library: the paper's running example (1 to 2) * isprime(4 to 7),
// evaluated both through the embedded-language interpreter and as a direct
// kernel composition.
package main

import (
	"fmt"
	"log"

	"junicon"
)

const program = `
def isprime(n) {
  if n < 2 then fail;
  every d := 2 to n-1 do { if not (n % d ~= 0) then fail };
  return n;
}
`

func main() {
	// 1. The embedded-language route: parse, normalize, interpret.
	in := junicon.NewInterp(nil)
	if err := in.LoadProgram(program); err != nil {
		log.Fatal(err)
	}
	results, err := in.Eval("(1 to 2) * isprime(4 to 7)", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("(1 to 2) * isprime(4 to 7)  =>")
	for _, v := range results {
		fmt.Printf(" %s", junicon.Image(v))
	}
	fmt.Println()

	// 2. The library route: the same search as a kernel composition —
	// the §2A decomposition i := (1 to 2) & j := (4 to 7) & isprime(j) & i*j.
	isprime := junicon.Proc("isprime", 1, func(a []junicon.Value) junicon.Value {
		n, _ := junicon.ToInt(a[0])
		if n < 2 {
			return nil // failure
		}
		for d := int64(2); d*d <= n; d++ {
			if n%d == 0 {
				return nil
			}
		}
		return a[0]
	})
	i := junicon.NewCell(junicon.Null())
	j := junicon.NewCell(junicon.Null())
	g := junicon.Product(
		junicon.Bind(i, junicon.Range(1, 2, 1)),
		junicon.Bind(j, junicon.Range(4, 7, 1)),
		junicon.Map(junicon.Invoke(junicon.Unit(isprime), junicon.Unit(j)), func(junicon.Value) junicon.Value {
			a, _ := junicon.ToInt(i.Get())
			b, _ := junicon.ToInt(j.Get())
			return junicon.Int(a * b)
		}),
	)
	fmt.Print("kernel composition          =>")
	junicon.Each(g, func(v junicon.Value) bool {
		fmt.Printf(" %s", junicon.Image(v))
		return true
	})
	fmt.Println()

	// 3. Goal-directed string processing: find all positions of "an" in
	// "banana", a generator from the builtin library.
	hits, err := in.Eval(`find("an", "banana")`, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(`find("an", "banana")        =>`)
	for _, v := range hits {
		fmt.Printf(" %s", junicon.Image(v))
	}
	fmt.Println()
}
