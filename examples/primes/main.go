// Command primes builds a parallel prime-hunting pipeline from the
// calculus of concurrent generators: candidate generation, trial division
// and formatting run as separate stages connected by generator proxies
// (pipes), each in its own goroutine — the fixed-code pipeline
// decomposition of the paper's Figure 2.
package main

import (
	"fmt"

	"junicon"
)

func main() {
	// Stage 1: odd candidates (plus 2), an infinite generator.
	candidates := junicon.Alt(
		junicon.Ints(2),
		junicon.NewGen(func(yield func(junicon.Value) bool) {
			for n := int64(3); ; n += 2 {
				if !yield(junicon.Int(n)) {
					return
				}
			}
		}),
	)

	// Stage 2: trial division. The stage fails non-primes, so the pipe
	// carries only primes downstream.
	sieve := func(in junicon.Gen) junicon.Gen {
		return junicon.Filter(in, func(v junicon.Value) bool {
			n, _ := junicon.ToInt(v)
			for d := int64(2); d*d <= n; d++ {
				if n%d == 0 {
					return false
				}
			}
			return true
		})
	}

	// Stage 3: twin-pair detection over the prime stream.
	var prev int64
	twins := func(in junicon.Gen) junicon.Gen {
		return junicon.Map(in, func(v junicon.Value) junicon.Value {
			n, _ := junicon.ToInt(v)
			pair := junicon.Str("")
			if prev != 0 && n-prev == 2 {
				pair = junicon.Str(fmt.Sprintf("twin(%d,%d)", prev, n))
			}
			prev = n
			l := junicon.NewList(junicon.Int(n), pair)
			return l
		})
	}

	// Chain the stages with pipes (buffer 8 throttles the producers) and
	// take the first 25 primes.
	pipeline := junicon.Pipeline(candidates, 8, sieve, twins)

	fmt.Println("first 25 primes (pipelined across 3 goroutines):")
	count := 0
	junicon.Each(junicon.Limit(pipeline, 25), func(v junicon.Value) bool {
		elems := junicon.Drain(junicon.PromoteVal(v), 0)
		n, _ := junicon.ToInt(elems[0])
		note, _ := junicon.ToStr(elems[1])
		if note != "" {
			fmt.Printf("%d\t%s\n", n, note)
		} else {
			fmt.Printf("%d\n", n)
		}
		count++
		return true
	})
	fmt.Printf("total: %d primes\n", count)

	// Futures: kick off an expensive lookahead in parallel and collect it
	// later — the singleton pipe of §3B.
	future := junicon.Future(junicon.Filter(junicon.Range(1_000_000, 2_000_000, 1), func(v junicon.Value) bool {
		n, _ := junicon.ToInt(v)
		for d := int64(2); d*d <= n; d++ {
			if n%d == 0 {
				return false
			}
		}
		return true
	}))
	if v, ok := future.First(); ok {
		fmt.Printf("first prime above 10^6 (computed in parallel): %s\n", junicon.Image(v))
	}
}
