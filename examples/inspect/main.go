// Command inspect demonstrates the live-introspection layer: it enables
// the stream registry, starts the stall watchdog with a short threshold,
// builds a small pipeline, and then deliberately abandons it — the JV011
// shape at run time. The watchdog classifies the stall (the producer is
// blocked in put with nobody taking) and this program prints the
// resulting topology snapshot and diagnosis, exactly what a live
// process serves at /debug/streams.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"junicon/internal/core"
	"junicon/internal/inspect"
	"junicon/internal/pipe"
	"junicon/internal/value"
)

func main() {
	inspect.Enable()
	w := inspect.StartWatchdog(inspect.WatchdogConfig{
		Period:    50 * time.Millisecond,
		Threshold: 200 * time.Millisecond,
		Stacks:    true,
	})
	defer w.Stop()

	// A healthy stage: produced and drained to exhaustion. The Stop is a
	// no-op on a drained pipe but states the release explicitly.
	healthy := pipe.FromGen(core.IntRange(1, 5), 2)
	defer healthy.Stop()
	sum := int64(0)
	for {
		v, ok := healthy.Next()
		if !ok {
			break
		}
		if n, ok := value.ToInteger(v); ok {
			if x, exact := n.Int64(); exact {
				sum += x
			}
		}
	}
	fmt.Println("healthy stage drained, sum =", sum)

	// The stall: an effectively infinite producer into a buffer of 2;
	// we take one value and walk away without Stop. The producer fills
	// the buffer and parks in put — forever.
	stuck := pipe.FromGen(core.IntRange(1, 1_000_000), 2)
	defer stuck.Stop() // released at exit so `go vet`/junilint stay clean
	if _, ok := stuck.Next(); !ok {
		log.Fatal("pipe produced nothing")
	}
	fmt.Println("took one value from the doomed pipe, now abandoning it…")

	// Give the watchdog time to see the stall age past the threshold.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && len(inspect.Diagnoses()) == 0 {
		time.Sleep(50 * time.Millisecond)
	}

	fmt.Println("\n--- topology (what /debug/streams serves) ---")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(inspect.Snapshot()); err != nil {
		log.Fatal(err)
	}

	ds := inspect.Diagnoses()
	if len(ds) == 0 {
		log.Fatal("watchdog produced no diagnosis")
	}
	fmt.Println("--- watchdog diagnosis ---")
	for _, d := range ds {
		fmt.Printf("stream %s (%s %q): %s after %v idle; produced=%d consumed=%d\n",
			d.Stream, d.Kind, d.Label, d.Cause,
			time.Duration(d.IdleNs).Round(time.Millisecond), d.Produced, d.Consumed)
	}
}
