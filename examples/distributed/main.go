// Command distributed runs the distributed word-count end-to-end: the
// corpus is sharded across junicond workers, each worker maps and
// partially reduces its shard (the embedded map-reduce of Figure 4 serving
// as a remote generator), and the coordinator sums the streamed partials.
// The distributed total is checked against the sequential reference; a
// mismatch (or any worker failure) exits non-zero, so CI can run this as
// an end-to-end gate.
//
// Usage:
//
//	distributed -workers 127.0.0.1:9707,127.0.0.1:9708
//	distributed                      (no -workers: spawns two in-process workers)
//
// Flags -lines, -words, -weight, -chunk and -buffer size the workload.
//
// With -trace=<file> the coordinator records telemetry events and writes
// them when the run ends (Chrome trace_event JSON for .json, JSONL
// otherwise). In self-contained mode the in-process workers share the
// coordinator's trace ring, so one file already holds both sides of every
// stream. Against external junicond workers started with -debug-addr,
// pass -worker-debug with their debug base URLs and each worker's
// /debug/trace is fetched and merged in — the OPEN frame carries the
// coordinator's stream IDs to the workers, so the merged Chrome trace
// renders each remote stream's client and server spans on aligned rows:
// the distributed run stitched end-to-end.
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"junicon/internal/remote"
	"junicon/internal/telemetry"
	"junicon/internal/wordcount"
)

func main() {
	var (
		workers     = flag.String("workers", "", "comma-separated junicond addresses (empty: two in-process workers)")
		lines       = flag.Int("lines", 2000, "corpus lines")
		words       = flag.Int("words", 10, "words per line")
		weight      = flag.String("weight", wordcount.Light.String(), "hash weight: lightweight | heavyweight")
		chunk       = flag.Int("chunk", 250, "per-worker map-reduce chunk size in lines")
		buffer      = flag.Int("buffer", 64, "remote pipe buffer (credit bound)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "per-Next deadline on each remote pipe")
		traceFile   = flag.String("trace", "", "write telemetry trace events to this file (.json = Chrome trace format, else JSONL)")
		workerDebug = flag.String("worker-debug", "", "comma-separated worker debug base URLs (http://host:port) whose /debug/trace is merged into -trace")
	)
	flag.Parse()

	if *traceFile != "" {
		telemetry.StartTrace(telemetry.DefaultRingSize)
	}

	w, err := wordcount.ParseWeight(*weight)
	if err != nil {
		fatal(err)
	}

	var addrs []string
	if *workers == "" {
		// Self-contained mode: spin up two in-process workers, the same
		// servers junicond runs, on loopback ports.
		for i := 0; i < 2; i++ {
			srv := remote.NewServer()
			wordcount.RegisterWordCount(srv)
			bound, err := srv.Start("127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			addrs = append(addrs, bound.String())
		}
		fmt.Printf("spawned in-process workers at %s\n", strings.Join(addrs, ", "))
	} else {
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
	}
	if len(addrs) == 0 {
		fatal(fmt.Errorf("no worker addresses"))
	}

	corpus := wordcount.GenerateLines(*lines, *words, 42)
	seqStart := time.Now()
	want := wordcount.SequentialTotal(corpus, w)
	seqDur := time.Since(seqStart)

	distStart := time.Now()
	got, err := wordcount.DistributedMapReduce(corpus, w, wordcount.DistributedConfig{
		Workers:   addrs,
		ChunkSize: *chunk,
		Remote:    remote.Config{Buffer: *buffer, Deadline: *timeout},
	})
	if err != nil {
		fatal(err)
	}
	distDur := time.Since(distStart)

	fmt.Printf("workers     %d (%s)\n", len(addrs), strings.Join(addrs, ", "))
	fmt.Printf("corpus      %d lines × %d words, %s hash\n", *lines, *words, w)
	fmt.Printf("sequential  %14.6f  in %v\n", want, seqDur)
	fmt.Printf("distributed %14.6f  in %v\n", got, distDur)

	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		fatal(fmt.Errorf("distributed total %v does not match sequential %v", got, want))
	}
	fmt.Println("totals match")

	if *traceFile != "" {
		if err := writeTrace(*traceFile, *workerDebug); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceFile)
	}
}

// writeTrace merges the coordinator's buffered events with each worker's
// /debug/trace (fetched over its debug listener) and writes the result.
// Worker events already carry the coordinator's stream IDs — the OPEN
// frame propagates them — so the merge stitches per-stream timelines
// across the processes.
func writeTrace(path, workerDebug string) error {
	evs := telemetry.Tag("coordinator", telemetry.DrainTrace())
	if workerDebug != "" {
		client := &http.Client{Timeout: 10 * time.Second}
		for i, base := range strings.Split(workerDebug, ",") {
			base = strings.TrimSpace(base)
			if base == "" {
				continue
			}
			resp, err := client.Get(strings.TrimSuffix(base, "/") + "/debug/trace")
			if err != nil {
				return fmt.Errorf("fetch worker trace: %w", err)
			}
			wevs, err := telemetry.ReadJSONL(resp.Body)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("parse worker trace from %s: %w", base, err)
			}
			// Distinct proc names keep each worker on its own pid even
			// though every junicond self-reports as "junicond".
			proc := fmt.Sprintf("worker-%d %s", i+1, base)
			for j := range wevs {
				wevs[j].Proc = proc
			}
			evs = append(evs, wevs...)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = telemetry.WriteChromeTrace(f, evs)
	} else {
		err = telemetry.WriteJSONL(f, evs)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "distributed: %v\n", err)
	os.Exit(1)
}
