// Command distributed runs the distributed word-count end-to-end: the
// corpus is sharded across junicond workers, each worker maps and
// partially reduces its shard (the embedded map-reduce of Figure 4 serving
// as a remote generator), and the coordinator sums the streamed partials.
// The distributed total is checked against the sequential reference; a
// mismatch (or any worker failure) exits non-zero, so CI can run this as
// an end-to-end gate.
//
// Usage:
//
//	distributed -workers 127.0.0.1:9707,127.0.0.1:9708
//	distributed                      (no -workers: spawns two in-process workers)
//
// Flags -lines, -words, -weight, -chunk and -buffer size the workload.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"junicon/internal/remote"
	"junicon/internal/wordcount"
)

func main() {
	var (
		workers = flag.String("workers", "", "comma-separated junicond addresses (empty: two in-process workers)")
		lines   = flag.Int("lines", 2000, "corpus lines")
		words   = flag.Int("words", 10, "words per line")
		weight  = flag.String("weight", wordcount.Light.String(), "hash weight: lightweight | heavyweight")
		chunk   = flag.Int("chunk", 250, "per-worker map-reduce chunk size in lines")
		buffer  = flag.Int("buffer", 64, "remote pipe buffer (credit bound)")
		timeout = flag.Duration("timeout", 2*time.Minute, "per-Next deadline on each remote pipe")
	)
	flag.Parse()

	w, err := wordcount.ParseWeight(*weight)
	if err != nil {
		fatal(err)
	}

	var addrs []string
	if *workers == "" {
		// Self-contained mode: spin up two in-process workers, the same
		// servers junicond runs, on loopback ports.
		for i := 0; i < 2; i++ {
			srv := remote.NewServer()
			wordcount.RegisterWordCount(srv)
			bound, err := srv.Start("127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			addrs = append(addrs, bound.String())
		}
		fmt.Printf("spawned in-process workers at %s\n", strings.Join(addrs, ", "))
	} else {
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
	}
	if len(addrs) == 0 {
		fatal(fmt.Errorf("no worker addresses"))
	}

	corpus := wordcount.GenerateLines(*lines, *words, 42)
	seqStart := time.Now()
	want := wordcount.SequentialTotal(corpus, w)
	seqDur := time.Since(seqStart)

	distStart := time.Now()
	got, err := wordcount.DistributedMapReduce(corpus, w, wordcount.DistributedConfig{
		Workers:   addrs,
		ChunkSize: *chunk,
		Remote:    remote.Config{Buffer: *buffer, Deadline: *timeout},
	})
	if err != nil {
		fatal(err)
	}
	distDur := time.Since(distStart)

	fmt.Printf("workers     %d (%s)\n", len(addrs), strings.Join(addrs, ", "))
	fmt.Printf("corpus      %d lines × %d words, %s hash\n", *lines, *words, w)
	fmt.Printf("sequential  %14.6f  in %v\n", want, seqDur)
	fmt.Printf("distributed %14.6f  in %v\n", got, distDur)

	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		fatal(fmt.Errorf("distributed total %v does not match sequential %v", got, want))
	}
	fmt.Println("totals match")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "distributed: %v\n", err)
	os.Exit(1)
}
