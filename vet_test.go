package junicon_test

import (
	"go/ast"
	goparser "go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"junicon"
)

const badActivation = `
def f() {
  x := 5;
  return @x;
}
`

// TestVetReportsCalculusErrors: the public Vet surface finds code that is
// statically wrong under the calculus.
func TestVetReportsCalculusErrors(t *testing.T) {
	diags, err := junicon.Vet(badActivation, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !junicon.HasVetErrors(diags) {
		t.Fatalf("expected an error diagnostic, got %v", diags)
	}
	found := false
	for _, d := range diags {
		if d.Code == "JV005" && d.Severity == junicon.SeverityError {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected JV005, got %v", diags)
	}
}

// TestVetKnownSuppressesHostNames: names the host binds (embedding
// scenarios, REPL globals) do not warn as never-assigned.
func TestVetKnownSuppressesHostNames(t *testing.T) {
	src := `def g() { suspend !corpus; }`
	diags, err := junicon.Vet(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Code != "JV001" {
		t.Fatalf("expected one JV001 without known names, got %v", diags)
	}
	known := func(name string) bool { return name == "corpus" }
	diags, err = junicon.Vet(src, known)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics with corpus known, got %v", diags)
	}
}

// TestVetMixedOffsetsLines: diagnostics from an embedded region carry
// whole-file line numbers.
func TestVetMixedOffsetsLines(t *testing.T) {
	mixed := "package host\n" + // line 1
		"\n" + // line 2
		"@<script lang=\"junicon\">\n" + // line 3
		"def f() { return @&null; }\n" + // line 4
		"@</script>\n"
	diags, err := junicon.VetMixed(mixed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("expected a diagnostic from the embedded region")
	}
	if diags[0].Pos.Line != 4 {
		t.Fatalf("expected whole-file line 4, got %d (%s)", diags[0].Pos.Line, diags[0])
	}
}

// TestCorpusVetClean is the false-positive gate for the analyzer: every
// shipped Junicon program — the testdata/ fixtures the tests and examples
// load, and the programs embedded as raw string literals in examples/ —
// must produce zero diagnostics at default severity. A new check that
// fires on working corpus code is a false positive by definition.
func TestCorpusVetClean(t *testing.T) {
	// Host-bound names: examples register natives and globals before
	// loading, so name-resolution warnings (JV001) don't apply here — the
	// corpus gate is about the structural and flow checks.
	known := func(string) bool { return true }
	vetOne := func(t *testing.T, label, src string) {
		t.Helper()
		var diags []junicon.Diag
		var err error
		if strings.Contains(src, "@<") {
			diags, err = junicon.VetMixed(src, known)
		} else {
			diags, err = junicon.Vet(src, known)
		}
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for _, d := range diags {
			t.Errorf("%s: corpus program not clean: %s", label, d)
		}
	}
	files, err := filepath.Glob(filepath.Join("testdata", "*.jn"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata corpus: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		vetOne(t, file, string(src))
	}
	// Raw string literals in the examples: anything that parses as a
	// Junicon program is corpus; literals in other languages (host text,
	// format strings) fail to parse and are skipped.
	mains, err := filepath.Glob(filepath.Join("examples", "*", "main.go"))
	if err != nil || len(mains) == 0 {
		t.Fatalf("no examples: %v", err)
	}
	vetted := 0
	for _, file := range mains {
		fset := token.NewFileSet()
		parsed, err := goparser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		ast.Inspect(parsed, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || !strings.HasPrefix(lit.Value, "`") {
				return true
			}
			src := strings.Trim(lit.Value, "`")
			if strings.Contains(src, "@<") {
				vetted++
				vetOne(t, fset.Position(lit.Pos()).String(), src)
				return true
			}
			if _, err := junicon.Vet(src, known); err != nil {
				return true // not a Junicon program
			}
			vetted++
			vetOne(t, fset.Position(lit.Pos()).String(), src)
			return true
		})
	}
	if vetted < 5 {
		t.Fatalf("only %d embedded example programs vetted; extraction broke", vetted)
	}
}

// TestTranslateGateAbortsOnErrors: the pre-translation gate refuses to
// emit code for programs with error-level findings, and routes warnings
// to the configured writer.
func TestTranslateGateAbortsOnErrors(t *testing.T) {
	var warnings strings.Builder
	_, err := junicon.Translate(badActivation, junicon.TranslateOptions{Diagnostics: &warnings})
	if err == nil || !strings.Contains(err.Error(), "JV005") {
		t.Fatalf("expected JV005 gate error, got %v", err)
	}

	warnings.Reset()
	out, err := junicon.Translate(`def g() { return maybe; }`, junicon.TranslateOptions{Diagnostics: &warnings})
	if err != nil {
		t.Fatalf("warnings must not abort translation: %v", err)
	}
	if !strings.Contains(warnings.String(), "JV001") {
		t.Fatalf("warning not routed to Diagnostics: %q", warnings.String())
	}
	if !strings.Contains(out, "package translated") {
		t.Fatalf("no code emitted:\n%s", out)
	}

	// NoVet bypasses the gate entirely.
	warnings.Reset()
	if _, err := junicon.Translate(badActivation, junicon.TranslateOptions{NoVet: true}); err != nil {
		t.Fatalf("NoVet should bypass the gate: %v", err)
	}
	if warnings.String() != "" {
		t.Fatalf("NoVet still produced diagnostics: %q", warnings.String())
	}
}
